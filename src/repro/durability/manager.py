"""Crash-consistent database persistence: journal-first, checkpoint-later.

:class:`DurableDatabase` wraps an engine
:class:`~repro.engine.database.Database` and a
:class:`~repro.durability.vdisk.VirtualDisk` behind one rule — **no
mutation is acknowledged before its journal record is durable**:

1. every engine mutation (create table/index, insert, update, delete)
   is encoded as one :class:`~repro.durability.wal.JournalRecord`,
   appended and synced (the MAC tag is the commit marker), and only
   then applied to the in-memory database;
2. :meth:`checkpoint` folds the current state into the existing storage
   image format and installs it via write-temp → sync → rename, then
   starts a fresh journal generation;
3. :meth:`open` recovers: load the checkpoint (falling back to
   :func:`~repro.robustness.recovery.load_database_resilient` when it
   is damaged), scan the journal — truncating at the first torn or
   unauthenticated suffix — and replay the committed records whose
   sequence number exceeds the checkpoint's ``applied_seq``.

Journal records carry the *stored* (post-codec) cell bytes, never
plaintext: the journal lives on the same untrusted storage as the
image, and physical logging also makes replay byte-deterministic — the
replayed table content is identical to the live run's, with no fresh
nonce draws.  Index maintenance is **not** replayed entry-by-entry;
whenever any record replays, every index is rebuilt from the recovered
cells with a fresh codec (the same policy, and the same nonce-rotation
caveat, as :mod:`repro.robustness.recovery`).

Audit events (``wal.*``) follow the off-by-default hook pattern of
:mod:`repro.observability.audit`: pure observation, no disk byte ever
depends on whether auditing is enabled.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Sequence

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.anchor import TrustAnchor

from repro.engine.btree import BPlusTree
from repro.engine.database import (
    CellCodec,
    Database,
    IndexCodecFactory,
    IndexInfo,
)
from repro.engine.indextable import IndexTable
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.engine.storage import (
    _Reader,
    _write_bytes,
    _write_int,
    _write_text,
    dump_database,
    load_database,
)
from repro.errors import SchemaError, StorageFormatError
from repro.mac.base import MAC
from repro.observability.audit import AUDIT
from repro.observability.flightrecorder import RECORDER
from repro.observability.timeseries import HUB
from repro.observability.trace import TRACER as _TRACER
from repro.robustness.recovery import RecoveryReport, load_database_resilient

from repro.durability.vdisk import VirtualDisk
from repro.durability.wal import (
    CHECKPOINT_BLOB,
    CHECKPOINT_TMP,
    Journal,
    JournalRecord,
    decode_checkpoint,
    encode_checkpoint,
)

#: Journal operation names (the ``op`` field of every record).
OP_CREATE_TABLE = "create_table"
OP_CREATE_INDEX = "create_index"
OP_INSERT = "insert"
OP_UPDATE = "update"
OP_DELETE = "delete"

#: Rotation protocol markers (written by :mod:`repro.sharding.rotation`).
#: They carry no engine mutation; the shard mount resolves them *before*
#: :meth:`DurableDatabase.open` ever scans the journal, so seeing one
#: during replay means the disk was mounted outside its keyspace.
OP_ROTATE_BEGIN = "rotate_begin"
OP_ROTATE_PROGRESS = "rotate_progress"
OP_ROTATE_COMMIT = "rotate_commit"
ROTATION_OPS = (OP_ROTATE_BEGIN, OP_ROTATE_PROGRESS, OP_ROTATE_COMMIT)

#: Checkpoint verdicts of :meth:`DurableDatabase.open`.
CKPT_OK = "ok"
CKPT_MISSING = "missing"
CKPT_UNAUTHENTICATED = "unauthenticated"
CKPT_MALFORMED = "malformed"
CKPT_UNLOADABLE = "unloadable"

#: Journal verdicts.
JOURNAL_CLEAN = "clean"
JOURNAL_TRUNCATED = "truncated"
JOURNAL_MISSING = "missing"
JOURNAL_STALE = "stale"


@dataclass
class WalRecovery:
    """What :meth:`DurableDatabase.open` found and decided."""

    checkpoint: str = CKPT_MISSING
    journal: str = JOURNAL_MISSING
    generation: int = 1
    applied_seq: int = 0
    records_replayed: int = 0
    records_skipped: int = 0
    truncated_at: int | None = None
    truncated_reason: str | None = None
    #: Why replay stopped early (a record the MAC accepted but the
    #: engine could not apply — journal/checkpoint mismatch).
    replay_stopped: str | None = None
    indexes_rebuilt: bool = False
    #: The resilient loader's report when the checkpoint needed salvage.
    resilient: RecoveryReport | None = None
    issues: list[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when recovery could not fully trust its inputs."""
        return (
            self.checkpoint not in (CKPT_OK, CKPT_MISSING)
            or self.replay_stopped is not None
        )

    def __str__(self) -> str:
        tail = f", truncated: {self.truncated_reason}" if self.truncated_reason else ""
        return (
            f"wal recovery: checkpoint={self.checkpoint} journal={self.journal} "
            f"replayed={self.records_replayed} skipped={self.records_skipped}"
            f"{tail}"
        )


# ---------------------------------------------------------------------------
# Record payload encoding (storage framing, so _Reader hardening applies)
# ---------------------------------------------------------------------------

def _encode_create_table(schema: TableSchema, table_id: int) -> bytes:
    out = io.BytesIO()
    _write_text(out, schema.name)
    _write_int(out, table_id)
    _write_int(out, len(schema.columns))
    for column in schema.columns:
        _write_text(out, column.name)
        _write_text(out, column.type.value)
        _write_int(out, 1 if column.sensitive else 0)
    return out.getvalue()


def _decode_create_table(reader: _Reader) -> tuple[TableSchema, int]:
    name = reader.read_text()
    table_id = reader.read_int()
    column_count = reader.read_count("column")
    columns = []
    for _ in range(column_count):
        column_name = reader.read_text()
        type_name = reader.read_text()
        try:
            column_type = ColumnType(type_name)
        except ValueError:
            raise StorageFormatError(
                f"unknown column type {type_name!r}", offset=reader.offset
            ) from None
        sensitive = reader.read_int() == 1
        columns.append(Column(column_name, column_type, sensitive))
    return TableSchema(name, columns), table_id


def _encode_create_index(
    name: str, table: str, column: str, kind: str, order: int, index_table_id: int
) -> bytes:
    out = io.BytesIO()
    _write_text(out, name)
    _write_text(out, table)
    _write_text(out, column)
    _write_text(out, kind)
    _write_int(out, order)
    _write_int(out, index_table_id)
    return out.getvalue()


def _encode_insert(table: str, row_id: int, stored_cells: Sequence[bytes]) -> bytes:
    out = io.BytesIO()
    _write_text(out, table)
    _write_int(out, row_id)
    _write_int(out, len(stored_cells))
    for cell in stored_cells:
        _write_bytes(out, cell)
    return out.getvalue()


def _encode_update(table: str, row_id: int, column_pos: int, stored: bytes) -> bytes:
    out = io.BytesIO()
    _write_text(out, table)
    _write_int(out, row_id)
    _write_int(out, column_pos)
    _write_bytes(out, stored)
    return out.getvalue()


def _encode_delete(table: str, row_id: int) -> bytes:
    out = io.BytesIO()
    _write_text(out, table)
    _write_int(out, row_id)
    return out.getvalue()


def _finish(reader: _Reader) -> None:
    if reader.remaining:
        raise StorageFormatError(
            f"{reader.remaining} trailing byte(s) in journal payload",
            offset=reader.offset,
        )


# ---------------------------------------------------------------------------
# Physical application (shared by the live path and replay)
# ---------------------------------------------------------------------------

def _apply_create_table(db: Database, schema: TableSchema, table_id: int) -> None:
    table = db.create_table(schema)
    if table.table_id != table_id:
        raise StorageFormatError(
            f"journal created table id {table.table_id}, record says {table_id}"
        )


def _register_empty_index(
    db: Database,
    name: str,
    table_name: str,
    column_name: str,
    kind: str,
    order: int,
    index_table_id: int,
) -> None:
    """Replay of ``create_index``: register the definition with an empty
    structure; the end-of-replay rebuild fills every index at once."""
    if name in db._indexes:
        raise SchemaError(f"index {name!r} already exists")
    table = db.table(table_name)
    column_pos = table.schema.column_index(column_name)
    if db._next_table_id != index_table_id:
        raise StorageFormatError(
            f"journal allocates index table id {db._next_table_id}, "
            f"record says {index_table_id}"
        )
    db._next_table_id += 1
    codec = db._index_codec_factory(index_table_id, table.table_id, column_pos)
    if kind == "table":
        structure: IndexTable | BPlusTree = IndexTable(index_table_id, codec)
    elif kind == "btree":
        structure = BPlusTree(index_table_id, codec, order=order)
    else:
        raise StorageFormatError(f"unknown index kind {kind!r} in journal")
    info = IndexInfo(name, table_name, column_name, structure)
    db._indexes[name] = info
    db._indexes_by_column.setdefault((table_name, column_name), []).append(info)


def _apply_insert(
    db: Database, table_name: str, row_id: int, stored_cells: list[bytes]
) -> None:
    table = db.table(table_name)
    if table._next_row != row_id:
        raise StorageFormatError(
            f"journal insert into {table_name!r} expects row {row_id}, "
            f"table would allocate {table._next_row}"
        )
    assigned = table.insert_cells(stored_cells)
    assert assigned == row_id


def _replay_record(db: Database, record: JournalRecord) -> None:
    """Apply one committed record physically (no index maintenance)."""
    reader = _Reader(record.payload)
    if record.op == OP_CREATE_TABLE:
        schema, table_id = _decode_create_table(reader)
        _finish(reader)
        _apply_create_table(db, schema, table_id)
    elif record.op == OP_CREATE_INDEX:
        name = reader.read_text()
        table = reader.read_text()
        column = reader.read_text()
        kind = reader.read_text()
        order = reader.read_int()
        index_table_id = reader.read_int()
        _finish(reader)
        _register_empty_index(db, name, table, column, kind, order, index_table_id)
    elif record.op == OP_INSERT:
        table_name = reader.read_text()
        row_id = reader.read_int()
        cell_count = reader.read_count("cell")
        cells = [reader.read_bytes() for _ in range(cell_count)]
        _finish(reader)
        _apply_insert(db, table_name, row_id, cells)
    elif record.op == OP_UPDATE:
        table_name = reader.read_text()
        row_id = reader.read_int()
        column_pos = reader.read_int()
        stored = reader.read_bytes()
        _finish(reader)
        db.table(table_name).set_cell(row_id, column_pos, stored)
    elif record.op == OP_DELETE:
        table_name = reader.read_text()
        row_id = reader.read_int()
        _finish(reader)
        db.table(table_name).delete_row(row_id)
    elif record.op in ROTATION_OPS:
        # A rotation marker surviving to replay means the shard-level
        # resolve never ran (the disk was mounted bare).  Refusing to
        # apply it stops replay and flags the mount as degraded — the
        # honest outcome, since only the keyspace mount knows whether
        # the rotation committed.
        raise StorageFormatError(
            f"rotation record {record.op!r} outside a keyspace mount"
        )
    else:
        raise StorageFormatError(f"unknown journal op {record.op!r}")


def _rebuild_indexes(db: Database) -> None:
    """Rebuild every index from recovered cells with fresh codecs.

    Deterministic given the table content: indexes are processed in name
    order, rows in id order, and each codec is freshly constructed from
    the factory — so two recoveries of the same committed prefix yield
    byte-identical structures."""
    for name in db.index_names:
        info = db.index(name)
        table = db.table(info.table)
        column_pos = table.schema.column_index(info.column)
        pairs = [
            (db._plain_cell(table, row_id, column_pos), row_id)
            for row_id in table.row_ids
        ]
        old = info.structure
        codec = db._index_codec_factory(
            old.index_table_id, table.table_id, column_pos
        )
        if isinstance(old, IndexTable):
            fresh: IndexTable | BPlusTree = IndexTable(old.index_table_id, codec)
        else:
            fresh = BPlusTree(old.index_table_id, codec, order=old.order)
        fresh.bulk_build(pairs)
        db.replace_index_structure(name, fresh)


# ---------------------------------------------------------------------------
# The durable database
# ---------------------------------------------------------------------------

class DurableDatabase:
    """An engine database whose mutations survive power cuts.

    Construct via :meth:`open` (which doubles as crash recovery); the
    wrapped engine is reachable read-only-by-convention at
    :attr:`database` — mutate only through this class, or the journal
    will not know.
    """

    def __init__(
        self,
        disk: VirtualDisk,
        db: Database,
        journal: Journal,
        mac: MAC,
        generation: int,
        seq: int,
        recovery: WalRecovery,
        anchor: "TrustAnchor | None" = None,
        anchor_scope: str = "db",
    ) -> None:
        self._disk = disk
        self._db = db
        self._journal = journal
        self._mac = mac
        self._generation = generation
        self._seq = seq
        self.recovery = recovery
        self._anchor = anchor
        self._anchor_scope = anchor_scope

    # -- recovery (the only way in) -------------------------------------------

    @classmethod
    def open(
        cls,
        disk: VirtualDisk,
        mac: MAC,
        cell_codec: CellCodec | None = None,
        index_codec_factory: IndexCodecFactory | None = None,
        fold: bool = True,
        anchor: "TrustAnchor | None" = None,
        anchor_scope: str = "db",
    ) -> "DurableDatabase":
        """Mount a disk: load the checkpoint, replay the journal.

        Decision table (see ``docs/robustness.md``):

        * checkpoint ok, journal clean/torn — strict load, replay the
          committed suffix;
        * checkpoint damaged, journal ok — resilient salvage of the
          embedded image, then best-effort replay;
        * both damaged — salvage what survives of each; the report's
          ``degraded`` flag is set.

        ``fold=False`` suppresses the checkpoint fold a degraded or
        torn-journal recovery normally performs.  Callers that cannot
        rule out mounting with the *wrong keys* (the sharded keyspace's
        epoch probing) use it so an unauthenticated mount never
        overwrites durable bytes a correct key could still recover.

        ``anchor`` enables rollback detection: before accepting the
        recovered state, its ``(seq, generation)`` is checked against
        the trusted :class:`~repro.resilience.anchor.TrustAnchor` under
        ``anchor_scope``, raising
        :class:`~repro.errors.StaleImageError` when the storage serves
        state older than an already-acknowledged commit.  The manager
        then keeps advancing the anchor after every durable commit
        point.
        """
        report = WalRecovery()
        journal = Journal(disk, mac)
        fresh_disk = not disk.exists(CHECKPOINT_BLOB) and not journal.exists()

        db: Database | None = None
        if disk.exists(CHECKPOINT_BLOB):
            ckpt = decode_checkpoint(disk.read(CHECKPOINT_BLOB), mac)
            report.generation = max(ckpt.generation, 1)
            report.applied_seq = max(ckpt.applied_seq, 0)
            if ckpt.ok:
                try:
                    db = load_database(
                        ckpt.image, cell_codec, index_codec_factory
                    )
                    report.checkpoint = CKPT_OK
                except Exception as exc:
                    report.checkpoint = CKPT_UNLOADABLE
                    report.issues.append(
                        f"authenticated checkpoint failed strict load: "
                        f"{type(exc).__name__}: {exc}"
                    )
            else:
                report.checkpoint = (
                    CKPT_UNAUTHENTICATED
                    if ckpt.status == "unauthenticated"
                    else CKPT_MALFORMED
                )
                report.issues.append(f"checkpoint {ckpt.status}: {ckpt.detail}")
            if db is None and ckpt.image is not None:
                salvage = load_database_resilient(
                    ckpt.image, cell_codec, index_codec_factory
                )
                db = salvage.database
                report.resilient = salvage.report
        if db is None:
            db = Database(
                cell_codec=cell_codec, index_codec_factory=index_codec_factory
            )

        scan = journal.scan()
        if scan.header_ok:
            report.journal = JOURNAL_CLEAN if scan.clean else JOURNAL_TRUNCATED
        else:
            report.journal = JOURNAL_MISSING
        report.truncated_at = scan.truncated_at
        report.truncated_reason = scan.truncated_reason
        if scan.truncated_at is not None and scan.header_ok:
            AUDIT.emit(
                "wal.truncated",
                offset=scan.truncated_at,
                reason=scan.truncated_reason,
            )
            RECORDER.note(
                "wal.truncated",
                offset=scan.truncated_at,
                reason=scan.truncated_reason,
            )

        # A clean checkpoint only extends a journal of its own
        # generation; a missing or degraded one takes any committed
        # records it can get (best-effort salvage — replay stops at the
        # first record that does not apply).
        records = scan.records if scan.header_ok else []
        if (
            scan.header_ok
            and report.checkpoint == CKPT_OK
            and scan.generation != report.generation
        ):
            if any(r.seq > report.applied_seq for r in records):
                report.issues.append(
                    f"journal generation {scan.generation} does not extend "
                    f"checkpoint generation {report.generation}; "
                    f"its records were not replayed"
                )
            report.journal = JOURNAL_STALE
            records = []

        seq = report.applied_seq
        with _TRACER.span("wal.replay") as replay_span:
            for record in records:
                if record.seq <= report.applied_seq:
                    report.records_skipped += 1
                    continue
                if record.seq != seq + 1:
                    report.replay_stopped = (
                        f"sequence gap: record {record.seq} after {seq}"
                    )
                    break
                try:
                    _replay_record(db, record)
                except Exception as exc:
                    report.replay_stopped = (
                        f"record {record.seq} ({record.op}) not applicable: "
                        f"{type(exc).__name__}: {exc}"
                    )
                    break
                seq = record.seq
                report.records_replayed += 1
            replay_span.add_cost("records_replayed", report.records_replayed)
        if report.replay_stopped is not None:
            report.issues.append(f"replay stopped: {report.replay_stopped}")

        if report.records_replayed or report.resilient is not None:
            _rebuild_indexes(db)
            report.indexes_rebuilt = True

        AUDIT.emit(
            "wal.replay",
            checkpoint=report.checkpoint,
            journal=report.journal,
            replayed=report.records_replayed,
            skipped=report.records_skipped,
            rebuilt=report.indexes_rebuilt,
        )
        RECORDER.note(
            "wal.replay",
            checkpoint=report.checkpoint,
            journal=report.journal,
            replayed=report.records_replayed,
            skipped=report.records_skipped,
            rebuilt=report.indexes_rebuilt,
        )
        if HUB.enabled:
            # Time-series view of the same facts: how often mounts
            # replay, and whether any mount needed the salvage fallback.
            if report.records_replayed:
                HUB.event("wal.replay.records", report.records_replayed)
                HUB.event("wal.replay.mounts", 1)
            if report.resilient is not None or report.degraded:
                HUB.event("wal.fallback.events", 1)

        if anchor is not None:
            # Rollback check *before* anything is written back: a stale
            # image must never be folded into a fresh checkpoint.  An
            # honest crash can only leave the storage at or ahead of the
            # anchor (the anchor advances strictly after each durable
            # commit point), so recovered < anchored means the store
            # rolled back or destroyed acknowledged commits.
            anchor.check(anchor_scope, seq, report.generation)
            if not report.degraded and report.replay_stopped is None:
                # Catch the anchor up — but only on a fully trusted
                # recovery: a forged (unauthenticated) checkpoint could
                # otherwise inflate the trusted watermark.
                anchor.advance(anchor_scope, seq, report.generation)

        manager = cls(
            disk, db, journal, mac,
            generation=report.generation, seq=seq, recovery=report,
            anchor=anchor, anchor_scope=anchor_scope,
        )
        if fresh_disk:
            journal.reset(manager._generation)
            report.journal = JOURNAL_CLEAN
        elif fold and (report.degraded or report.journal != JOURNAL_CLEAN):
            # Fold the recovered state into a fresh checkpoint so the
            # journal never grows past a torn or stale tail.
            manager.checkpoint()
        return manager

    # -- the wrapped engine ---------------------------------------------------

    @property
    def database(self) -> Database:
        return self._db

    @property
    def last_seq(self) -> int:
        return self._seq

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def disk(self) -> VirtualDisk:
        return self._disk

    @property
    def journal(self) -> Journal:
        return self._journal

    @property
    def mac(self) -> MAC:
        return self._mac

    @property
    def anchor(self) -> "TrustAnchor | None":
        return self._anchor

    @property
    def anchor_scope(self) -> str:
        return self._anchor_scope

    def commit_record(self, op: str, payload: bytes) -> JournalRecord:
        """Journal one protocol record (no engine mutation).

        The rotation state machine uses this for its begin/progress/
        commit markers so they share the manager's sequence numbering,
        commit-marker MAC, and ``wal.commit`` audit trail.
        """
        return self._commit(op, payload)

    # -- journaling core ------------------------------------------------------

    def _commit(self, op: str, payload: bytes) -> JournalRecord:
        record = JournalRecord(self._seq + 1, op, payload)
        self._journal.append(record)
        self._seq = record.seq
        if self._anchor is not None and op not in ROTATION_OPS:
            # Advance strictly *after* the journal append: an honest
            # crash can lose the advance but never leave the anchor
            # ahead of the disk.  Rotation protocol markers are excluded
            # — a crash mid-rotation legitimately rolls them back, and
            # they carry no user data.
            self._anchor.advance(self._anchor_scope, record.seq, self._generation)
        AUDIT.emit("wal.commit", seq=record.seq, op=op, bytes=len(payload))
        return record

    def checkpoint(self) -> None:
        """Fold the current state into the image format, atomically."""
        with _TRACER.span("wal.checkpoint") as span:
            image = dump_database(self._db)
            self._generation += 1
            blob = encode_checkpoint(self._generation, self._seq, image, self._mac)
            span.add_cost("bytes_written", len(blob))
            self._disk.write(CHECKPOINT_TMP, blob)
            self._disk.sync(CHECKPOINT_TMP)
            self._disk.rename(CHECKPOINT_TMP, CHECKPOINT_BLOB)
            self._journal.reset(self._generation)
        if self._anchor is not None:
            self._anchor.advance(self._anchor_scope, self._seq, self._generation)
        AUDIT.emit(
            "wal.checkpoint",
            generation=self._generation,
            applied_seq=self._seq,
            bytes=len(blob),
        )

    # -- journaled mutations --------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        if schema.name in self._db._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        table_id = self._db._next_table_id
        self._commit(OP_CREATE_TABLE, _encode_create_table(schema, table_id))
        _apply_create_table(self._db, schema, table_id)

    def create_index(
        self, name: str, table_name: str, column_name: str,
        kind: str = "table", order: int = 8,
    ) -> None:
        if name in self._db._indexes:
            raise SchemaError(f"index {name!r} already exists")
        if kind not in ("table", "btree"):
            raise SchemaError(f"unknown index kind {kind!r}")
        table = self._db.table(table_name)
        table.schema.column_index(column_name)  # validates before journaling
        index_table_id = self._db._next_table_id
        self._commit(
            OP_CREATE_INDEX,
            _encode_create_index(
                name, table_name, column_name, kind, order, index_table_id
            ),
        )
        info = self._db.create_index(name, table_name, column_name, kind, order)
        if info.structure.index_table_id != index_table_id:
            raise StorageFormatError(
                f"index build allocated id {info.structure.index_table_id}, "
                f"journal says {index_table_id}"
            )

    def insert(self, table_name: str, values: Sequence[Any]) -> int:
        table = self._db.table(table_name)
        plain_cells = table.schema.encode_row(values)
        row_id = table._next_row
        stored_cells = []
        for column_pos, plain in enumerate(plain_cells):
            address = table.address(row_id, column_pos)
            stored_cells.append(
                self._db._stored_form(table, column_pos, plain, address)
            )
        self._commit(OP_INSERT, _encode_insert(table_name, row_id, stored_cells))
        _apply_insert(self._db, table_name, row_id, stored_cells)
        for info in self._db._table_indexes(table_name):
            column_pos = table.schema.column_index(info.column)
            info.structure.insert(plain_cells[column_pos], row_id)
        return row_id

    def update_value(
        self, table_name: str, row_id: int, column_name: str, value: Any
    ) -> None:
        table = self._db.table(table_name)
        column_pos = table.schema.column_index(column_name)
        column = table.schema.columns[column_pos]
        old_plain = self._db._plain_cell(table, row_id, column_pos)
        new_plain = column.encode(value)
        address = table.address(row_id, column_pos)
        stored = self._db._stored_form(table, column_pos, new_plain, address)
        self._commit(OP_UPDATE, _encode_update(table_name, row_id, column_pos, stored))
        table.set_cell(row_id, column_pos, stored)
        for info in self._db.indexes_on(table_name, column_name):
            info.structure.delete(old_plain, row_id)
            info.structure.insert(new_plain, row_id)

    def delete_row(self, table_name: str, row_id: int) -> None:
        table = self._db.table(table_name)
        table._get_row(row_id)  # validate before journaling
        index_plains = [
            (info, self._db._plain_cell(
                table, row_id, table.schema.column_index(info.column)
            ))
            for info in self._db._table_indexes(table_name)
        ]
        self._commit(OP_DELETE, _encode_delete(table_name, row_id))
        for info, plain in index_plains:
            info.structure.delete(plain, row_id)
        table.delete_row(row_id)
