"""Deadline-bounded retries for transient storage failures.

A flaky backend (:class:`~repro.durability.vdisk.FlakyDisk`, or any real
network disk) fails operations *transiently*: the operation did not
happen and an identical retry may succeed.  :class:`RetryPolicy` retries
exactly those failures — capped exponential backoff, full-range jitter
drawn from :mod:`repro.primitives.rng` (so a seeded policy replays the
same schedule forever), and a hard deadline after which the last
underlying error propagates.

Anything that is not a :class:`~repro.errors.TransientDiskError` —
notably :class:`~repro.errors.StorageFormatError` and
:class:`~repro.errors.CryptoError`, which signal *corruption*, not
flakiness — is never retried: retrying an authentication failure only
hands the adversary more oracle queries.

Timing is injectable: by default the policy runs on an internal virtual
clock advanced by its own sleeps, so tests (and the crash campaign)
never actually wait.  Pass ``sleep=time.sleep, clock=time.monotonic``
for wall-clock behaviour.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.errors import RetryExhaustedError, TransientDiskError
from repro.primitives.rng import DeterministicRandom, RandomSource

from repro.durability.vdisk import VirtualDisk

T = TypeVar("T")

#: Only these are retried; everything else propagates on first raise.
TRANSIENT_ERRORS = (TransientDiskError,)

_JITTER_GRAIN = 1_000_000


class RetryPolicy:
    """Capped exponential backoff with jitter under a hard deadline.

    Attempt *k* (0-based) backs off ``min(max_delay, base_delay * 2**k)``
    scaled by a jitter factor in ``[1 - jitter, 1]``; when the next
    sleep would push total elapsed time past ``deadline``, the last
    underlying error is re-raised instead.
    """

    def __init__(
        self,
        deadline: float = 5.0,
        base_delay: float = 0.01,
        max_delay: float = 0.5,
        jitter: float = 0.5,
        rng: RandomSource | None = None,
        sleep: Callable[[float], None] | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        if base_delay <= 0 or max_delay < base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.deadline = deadline
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self._rng = rng if rng is not None else DeterministicRandom(b"retry-policy")
        self._user_sleep = sleep
        self._user_clock = clock
        self._virtual_now = 0.0

    # -- timing ---------------------------------------------------------------

    def _now(self) -> float:
        if self._user_clock is not None:
            return self._user_clock()
        return self._virtual_now

    def _sleep(self, seconds: float) -> None:
        self._virtual_now += seconds
        if self._user_sleep is not None:
            self._user_sleep(seconds)

    # -- backoff --------------------------------------------------------------

    def backoff(self, attempt: int) -> float:
        """The (jittered) delay before retry number ``attempt + 1``."""
        # Cap the exponent before exponentiating: 2**attempt overflows
        # float conversion long before max_delay stops dominating.
        if attempt >= 64:
            ceiling = self.max_delay
        else:
            ceiling = min(self.max_delay, self.base_delay * (2 ** attempt))
        fraction = self._rng.randint(_JITTER_GRAIN) / _JITTER_GRAIN
        return ceiling * (1.0 - self.jitter * fraction)

    # -- execution ------------------------------------------------------------

    def call(self, operation: Callable[[], T]) -> T:
        """Run ``operation``, retrying transient failures until the
        deadline; raises :class:`~repro.errors.RetryExhaustedError`
        (chained from, and carrying, the last underlying error) on
        exhaustion."""
        start = self._now()
        attempt = 0
        while True:
            try:
                return operation()
            except TRANSIENT_ERRORS as exc:
                delay = self.backoff(attempt)
                attempt += 1
                if self._now() - start + delay > self.deadline:
                    raise RetryExhaustedError(attempt, exc) from exc
                self._sleep(delay)


class RetryingDisk(VirtualDisk):
    """A disk whose every operation runs under a :class:`RetryPolicy`."""

    def __init__(self, inner: VirtualDisk, policy: RetryPolicy | None = None) -> None:
        self._inner = inner
        self.policy = policy if policy is not None else RetryPolicy()

    @property
    def inner(self) -> VirtualDisk:
        """The wrapped disk (stackable over other fault wrappers)."""
        return self._inner

    def read(self, name: str) -> bytes:
        return self.policy.call(lambda: self._inner.read(name))

    def exists(self, name: str) -> bool:
        return self.policy.call(lambda: self._inner.exists(name))

    def names(self) -> list[str]:
        return self.policy.call(lambda: self._inner.names())

    def append(self, name: str, data: bytes) -> None:
        self.policy.call(lambda: self._inner.append(name, data))

    def write(self, name: str, data: bytes) -> None:
        self.policy.call(lambda: self._inner.write(name, data))

    def rename(self, src: str, dst: str) -> None:
        self.policy.call(lambda: self._inner.rename(src, dst))

    def delete(self, name: str) -> None:
        self.policy.call(lambda: self._inner.delete(name))

    def sync(self, name: str) -> None:
        self.policy.call(lambda: self._inner.sync(name))
