"""Virtual disks: the write targets the durability layer persists to.

The paper's storage layer is untrusted *and* unreliable: besides the
deliberate tampering of Sect. 1, every real deployment faces power cuts
mid-write, torn sectors, write caches that reorder or drop unsynced
data, and transient I/O errors.  A :class:`VirtualDisk` is a minimal
named-blob store exposing exactly the operations whose failure
semantics matter — ``append``/``write``/``rename``/``delete``/``sync``
— so those failures can be injected deterministically.

Backends:

:class:`MemoryDisk`
    Dict-backed, with an explicit volatile/durable split: mutations land
    in the volatile view (the OS page cache) and only ``sync`` — or a
    flushing ``rename`` — makes them durable.  ``crash()`` simulates a
    power cut; the surviving bytes are the durable state.
:class:`FileDisk`
    A real directory using ``os.replace`` for atomic renames and
    ``fsync`` for durability.  No fault injection (the real kernel is in
    charge); exists so the journal can persist across processes.
:class:`CrashDisk`
    Wraps a :class:`MemoryDisk` (directly, or through any stack of
    name-preserving wrappers) and executes a :class:`CrashPlan`: kill
    power at the *k*-th mutating operation, optionally applying only a
    prefix of that operation's bytes (a torn sector) or dropping every
    unsynced byte (a lost write cache).
:class:`FlakyDisk`
    Raises :class:`~repro.errors.TransientDiskError` on a deterministic,
    seed-driven schedule *before* applying the operation, so a retry is
    always safe.  Pair with :class:`~repro.durability.retry.RetryingDisk`.

Durability model (documented, deliberately simple): ``sync(name)``
makes that file's content durable; ``rename`` flushes its source and is
then metadata-durable (journalling file systems commit the rename
record); ``delete`` is metadata-durable.  The write-ahead protocol in
:mod:`repro.durability.manager` only relies on sync-then-rename, which
is safe under stricter models too.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path

from repro.errors import DiskError, PowerCutError, TransientDiskError
from repro.primitives.rng import RandomSource

#: Operations that mutate disk state — the write boundaries a crash
#: campaign enumerates.  Reads never count.
MUTATING_OPS = ("append", "write", "rename", "delete", "sync")

#: Mutating operations that carry a byte payload and can therefore tear.
BYTE_OPS = ("append", "write")


def base_disk(disk: "VirtualDisk") -> "VirtualDisk":
    """Resolve a stack of fault wrappers down to the backend disk.

    Every wrapper that passes blob names through unchanged
    (:class:`CrashDisk`, :class:`FlakyDisk`,
    :class:`~repro.durability.retry.RetryingDisk`, ...) exposes the
    wrapped disk as ``.inner``; this walks that chain.
    :class:`PrefixDisk` deliberately does *not* participate — it renames
    blobs, so machinery that addresses the backend directly (torn-write
    injection, ``survivor()``) would write to the wrong names through
    it.
    """
    while True:
        inner = getattr(disk, "inner", None)
        if inner is None or inner is disk:
            return disk
        disk = inner


class VirtualDisk(ABC):
    """A named-blob store with explicit durability boundaries."""

    # -- reads ---------------------------------------------------------------

    @abstractmethod
    def read(self, name: str) -> bytes:
        """Current (volatile) content; raises :class:`DiskError` if absent."""

    @abstractmethod
    def exists(self, name: str) -> bool: ...

    @abstractmethod
    def names(self) -> list[str]:
        """Sorted names of every existing blob."""

    # -- mutations (each call is one write boundary) -------------------------

    @abstractmethod
    def append(self, name: str, data: bytes) -> None:
        """Append bytes, creating the blob if needed."""

    @abstractmethod
    def write(self, name: str, data: bytes) -> None:
        """Create or truncate-and-replace a blob."""

    @abstractmethod
    def rename(self, src: str, dst: str) -> None:
        """Atomically replace ``dst`` with ``src`` (flushes ``src`` first)."""

    @abstractmethod
    def delete(self, name: str) -> None: ...

    @abstractmethod
    def sync(self, name: str) -> None:
        """Make the blob's current content durable."""


class MemoryDisk(VirtualDisk):
    """In-memory disk with a volatile/durable split.

    ``_volatile`` is what reads observe (the page cache); ``_durable``
    is what survives a power cut.  ``_pending`` tracks blobs whose
    volatile content is ahead of their durable copy.
    """

    def __init__(self, initial: dict[str, bytes] | None = None) -> None:
        self._volatile: dict[str, bytearray] = {}
        self._durable: dict[str, bytes] = {}
        self._pending: set[str] = set()
        if initial:
            for name, data in initial.items():
                self._volatile[name] = bytearray(data)
                self._durable[name] = bytes(data)

    # -- reads ---------------------------------------------------------------

    def read(self, name: str) -> bytes:
        try:
            return bytes(self._volatile[name])
        except KeyError:
            raise DiskError(f"no such blob {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._volatile

    def names(self) -> list[str]:
        return sorted(self._volatile)

    # -- mutations -----------------------------------------------------------

    def append(self, name: str, data: bytes) -> None:
        self._volatile.setdefault(name, bytearray()).extend(data)
        self._pending.add(name)

    def write(self, name: str, data: bytes) -> None:
        self._volatile[name] = bytearray(data)
        self._pending.add(name)

    def rename(self, src: str, dst: str) -> None:
        if src not in self._volatile:
            raise DiskError(f"cannot rename missing blob {src!r}")
        # Flush the source (sync-before-rename), then commit the rename
        # as a metadata operation: journalling file systems persist it.
        self._durable[src] = bytes(self._volatile[src])
        self._pending.discard(src)
        self._volatile[dst] = self._volatile.pop(src)
        self._durable[dst] = self._durable.pop(src)
        self._pending.discard(dst)

    def delete(self, name: str) -> None:
        if name not in self._volatile:
            raise DiskError(f"cannot delete missing blob {name!r}")
        del self._volatile[name]
        self._durable.pop(name, None)
        self._pending.discard(name)

    def sync(self, name: str) -> None:
        if name not in self._volatile:
            raise DiskError(f"cannot sync missing blob {name!r}")
        self._durable[name] = bytes(self._volatile[name])
        self._pending.discard(name)

    # -- fault-injection support ----------------------------------------------

    def crash(self, drop_unsynced: bool) -> None:
        """Simulate a power cut.

        ``drop_unsynced=True`` models a volatile write cache: every
        pending (unsynced) change is lost and the durable copies win.
        ``drop_unsynced=False`` models the friendly case where the cache
        happened to reach the platter before the cut.
        """
        if drop_unsynced:
            self._volatile = {
                name: bytearray(data) for name, data in self._durable.items()
            }
        else:
            for name in self._pending:
                self._durable[name] = bytes(self._volatile[name])
        self._pending.clear()

    def durable_state(self) -> dict[str, bytes]:
        """The bytes that would survive a power cut right now."""
        return dict(self._durable)

    def clone(self) -> "MemoryDisk":
        """An independent copy of the volatile view, fully durable."""
        return MemoryDisk({name: bytes(data) for name, data in self._volatile.items()})


class PrefixDisk(VirtualDisk):
    """A namespace view over another disk: blob ``x`` lives at ``<prefix>x``.

    A sharded keyspace gives every shard *its own* VirtualDisk while all
    shards (and the cross-shard manifest) share one physical device —
    exactly how one directory holds many shards' files.  Because every
    operation passes straight through to the base disk, fault injectors
    wrapped around the base (:class:`CrashDisk`, :class:`FlakyDisk`) see
    one unified stream of write boundaries across all shards, which is
    what lets the crash campaign cut power "anywhere in the keyspace".

    The prefix uses ``.`` rather than ``/`` as its separator so the view
    also composes with :class:`FileDisk` (which rejects path separators
    in blob names).
    """

    def __init__(self, base: VirtualDisk, prefix: str) -> None:
        if "/" in prefix:
            raise DiskError(f"illegal disk prefix {prefix!r}")
        self._base = base
        self.prefix = prefix

    def _name(self, name: str) -> str:
        return self.prefix + name

    # -- reads ---------------------------------------------------------------

    def read(self, name: str) -> bytes:
        return self._base.read(self._name(name))

    def exists(self, name: str) -> bool:
        return self._base.exists(self._name(name))

    def names(self) -> list[str]:
        return sorted(
            name[len(self.prefix):]
            for name in self._base.names()
            if name.startswith(self.prefix)
        )

    # -- mutations -----------------------------------------------------------

    def append(self, name: str, data: bytes) -> None:
        self._base.append(self._name(name), data)

    def write(self, name: str, data: bytes) -> None:
        self._base.write(self._name(name), data)

    def rename(self, src: str, dst: str) -> None:
        self._base.rename(self._name(src), self._name(dst))

    def delete(self, name: str) -> None:
        self._base.delete(self._name(name))

    def sync(self, name: str) -> None:
        self._base.sync(self._name(name))


class FileDisk(VirtualDisk):
    """Real files under one directory; ``os.replace`` + ``fsync``."""

    def __init__(self, directory: str | Path) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> Path:
        if "/" in name or name.startswith("."):
            raise DiskError(f"illegal blob name {name!r}")
        return self._dir / name

    def read(self, name: str) -> bytes:
        try:
            return self._path(name).read_bytes()
        except FileNotFoundError:
            raise DiskError(f"no such blob {name!r}") from None
        except OSError as exc:
            raise DiskError(f"cannot read {name!r}: {exc}") from None

    def exists(self, name: str) -> bool:
        return self._path(name).exists()

    def names(self) -> list[str]:
        return sorted(p.name for p in self._dir.iterdir() if p.is_file())

    def append(self, name: str, data: bytes) -> None:
        try:
            with open(self._path(name), "ab") as handle:
                handle.write(data)
        except OSError as exc:
            raise DiskError(f"cannot append to {name!r}: {exc}") from None

    def write(self, name: str, data: bytes) -> None:
        try:
            with open(self._path(name), "wb") as handle:
                handle.write(data)
        except OSError as exc:
            raise DiskError(f"cannot write {name!r}: {exc}") from None

    def rename(self, src: str, dst: str) -> None:
        self.sync(src)
        try:
            os.replace(self._path(src), self._path(dst))
            self._sync_directory()
        except OSError as exc:
            raise DiskError(f"cannot rename {src!r} -> {dst!r}: {exc}") from None

    def delete(self, name: str) -> None:
        try:
            os.unlink(self._path(name))
            self._sync_directory()
        except FileNotFoundError:
            raise DiskError(f"cannot delete missing blob {name!r}") from None
        except OSError as exc:
            raise DiskError(f"cannot delete {name!r}: {exc}") from None

    def sync(self, name: str) -> None:
        try:
            with open(self._path(name), "rb") as handle:
                os.fsync(handle.fileno())
        except FileNotFoundError:
            raise DiskError(f"cannot sync missing blob {name!r}") from None
        except OSError as exc:
            raise DiskError(f"cannot sync {name!r}: {exc}") from None

    def _sync_directory(self) -> None:
        fd = os.open(self._dir, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


@dataclass(frozen=True)
class CrashPlan:
    """Kill the disk at mutating operation ``op_index`` (0-based).

    ``mode``:

    ``"cut"``
        The interrupted operation is not applied at all; everything
        written before it (synced or not) happens to survive.
    ``"torn"``
        A byte-carrying operation applies only a prefix of its payload —
        the torn sector — which *does* reach the platter; earlier
        unsynced bytes survive too.  Non-byte operations fall back to
        ``"cut"``.
    ``"drop"``
        The interrupted operation is not applied *and* the write cache
        dies with the power: every unsynced byte is lost, only
        explicitly durable state survives.
    """

    op_index: int
    mode: str = "cut"

    def __post_init__(self) -> None:
        if self.mode not in ("cut", "torn", "drop"):
            raise ValueError(f"unknown crash mode {self.mode!r}")
        if self.op_index < 0:
            raise ValueError("op_index must be non-negative")


class CrashDisk(VirtualDisk):
    """Counts write boundaries and executes a :class:`CrashPlan`.

    With ``plan=None`` it is a pure pass-through counter — run the
    workload once to learn how many boundaries it has, then sweep.
    After the crash fires, every operation (reads included — the device
    is gone) raises :class:`~repro.errors.PowerCutError`.
    """

    def __init__(self, inner: VirtualDisk, plan: CrashPlan | None = None) -> None:
        self._inner = inner
        base = base_disk(inner)
        if not isinstance(base, MemoryDisk):
            raise DiskError(
                "CrashDisk needs a MemoryDisk at the bottom of its wrapper "
                f"stack to model durability, found {type(base).__name__}"
            )
        self._base = base
        self._plan = plan
        self.op_count = 0
        #: Kind of every boundary seen so far, e.g. ``["write", "sync"]``
        #: — a pass-through run records which boundaries can tear.
        self.op_log: list[str] = []
        self.crashed = False

    @property
    def inner(self) -> VirtualDisk:
        """The wrapped disk (stackable over other fault wrappers)."""
        return self._inner

    # -- crash machinery ------------------------------------------------------

    def _check_alive(self) -> None:
        if self.crashed:
            raise PowerCutError("disk lost power")

    def _boundary(self, op: str, name: str, data: bytes | None) -> bool:
        """Advance the op counter; True when the caller should proceed."""
        self._check_alive()
        index = self.op_count
        self.op_count += 1
        self.op_log.append(op)
        if self._plan is None or index != self._plan.op_index:
            return True
        # This operation is the one the power cut interrupts.
        mode = self._plan.mode
        if mode == "torn" and op in BYTE_OPS and data:
            torn = data[: (len(data) + 1) // 2]
            # The torn sector physically reached the medium mid-write:
            # apply it to the backend directly, past any stacked
            # injectors (a FlakyDisk cannot veto physics).
            getattr(self._base, op)(name, torn)
            self._base.sync(name)
            self._base.crash(drop_unsynced=False)
        else:
            self._base.crash(drop_unsynced=(mode == "drop"))
        self.crashed = True
        raise PowerCutError(
            f"power cut at write boundary {index} ({op} {name!r}, {mode})"
        )

    def survivor(self) -> MemoryDisk:
        """A fresh disk holding exactly the bytes that survived the cut."""
        return MemoryDisk(self._base.durable_state())

    # -- reads ---------------------------------------------------------------

    def read(self, name: str) -> bytes:
        self._check_alive()
        return self._inner.read(name)

    def exists(self, name: str) -> bool:
        self._check_alive()
        return self._inner.exists(name)

    def names(self) -> list[str]:
        self._check_alive()
        return self._inner.names()

    # -- mutations -----------------------------------------------------------

    def append(self, name: str, data: bytes) -> None:
        if self._boundary("append", name, data):
            self._inner.append(name, data)

    def write(self, name: str, data: bytes) -> None:
        if self._boundary("write", name, data):
            self._inner.write(name, data)

    def rename(self, src: str, dst: str) -> None:
        if self._boundary("rename", src, None):
            self._inner.rename(src, dst)

    def delete(self, name: str) -> None:
        if self._boundary("delete", name, None):
            self._inner.delete(name)

    def sync(self, name: str) -> None:
        if self._boundary("sync", name, None):
            self._inner.sync(name)


class FlakyDisk(VirtualDisk):
    """Injects transient failures on a deterministic seeded schedule.

    The failure fires *before* the operation touches the inner disk, so
    a failed operation has no partial effects and retrying it is always
    safe — the contract :class:`~repro.errors.TransientDiskError`
    promises.  ``fail_rate`` is the per-operation failure probability in
    [0, 1); draws come from :mod:`repro.primitives.rng`, so a fixed seed
    gives a fixed schedule.
    """

    def __init__(
        self,
        inner: VirtualDisk,
        rng: RandomSource,
        fail_rate: float = 0.3,
        fail_reads: bool = True,
    ) -> None:
        if not 0.0 <= fail_rate < 1.0:
            raise ValueError("fail_rate must be in [0, 1)")
        self._inner = inner
        self._rng = rng
        self._threshold = int(fail_rate * 1_000_000)
        self._fail_reads = fail_reads
        self.failures_injected = 0

    @property
    def inner(self) -> VirtualDisk:
        """The wrapped disk (stackable over other fault wrappers)."""
        return self._inner

    def _maybe_fail(self, op: str, name: str, is_read: bool = False) -> None:
        if is_read and not self._fail_reads:
            return
        if self._rng.randint(1_000_000) < self._threshold:
            self.failures_injected += 1
            raise TransientDiskError(f"injected transient failure ({op} {name!r})")

    def read(self, name: str) -> bytes:
        self._maybe_fail("read", name, is_read=True)
        return self._inner.read(name)

    def exists(self, name: str) -> bool:
        self._maybe_fail("exists", name, is_read=True)
        return self._inner.exists(name)

    def names(self) -> list[str]:
        self._maybe_fail("names", "*", is_read=True)
        return self._inner.names()

    def append(self, name: str, data: bytes) -> None:
        self._maybe_fail("append", name)
        self._inner.append(name, data)

    def write(self, name: str, data: bytes) -> None:
        self._maybe_fail("write", name)
        self._inner.write(name, data)

    def rename(self, src: str, dst: str) -> None:
        self._maybe_fail("rename", src)
        self._inner.rename(src, dst)

    def delete(self, name: str) -> None:
        self._maybe_fail("delete", name)
        self._inner.delete(name)

    def sync(self, name: str) -> None:
        self._maybe_fail("sync", name)
        self._inner.sync(name)
