"""Write-ahead journal and checkpoint blob formats.

Storage is the paper's untrusted channel, so journal records cannot be
trusted to be *well-formed* (torn appends) or *authentic* (an
adversary, or a firmware bug, rewriting the tail).  Both concerns meet
in one rule: a record counts as **committed** exactly when it parses
completely under the storage framing *and* its MAC verifies.  Replay
truncates at the first record failing either test — a torn tail and a
forged tail are indistinguishable on purpose.

Journal blob layout (framing reuses the storage helpers, so every
parse failure is a :class:`~repro.errors.StorageFormatError` with an
offset, never a raw ``struct.error``)::

    WAL_MAGIC ∥ int(generation) ∥ record*
    record := int(seq) ∥ text(op) ∥ bytes(payload) ∥ bytes(tag)
    tag    := MAC(seq_be8 ∥ op_utf8 ∥ payload)          # the commit marker

Checkpoint blob layout::

    CKPT_MAGIC ∥ int(generation) ∥ int(applied_seq)
              ∥ bytes(image) ∥ bytes(tag)
    tag := MAC(generation_be8 ∥ applied_seq_be8 ∥ image)

``generation`` ties a journal to the checkpoint epoch it extends;
``applied_seq`` is the last journal sequence number folded into the
image, so records at or below it are never replayed twice.  The MAC key
should be derived for this single purpose
(:func:`journal_mac` uses ``KeyRing.derive("journal-mac")``), keeping
the key separation the paper's Sect. 3.3 attack punishes [12] for
lacking.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field

from repro.core.keys import KeyRing
from repro.engine.storage import _Reader, _write_bytes, _write_int, _write_text
from repro.errors import DiskError, StorageFormatError
from repro.mac.base import MAC
from repro.mac.hmac_mac import HMACMAC
from repro.observability.trace import TRACER as _TRACER

from repro.durability.vdisk import VirtualDisk

WAL_MAGIC = b"REPROWAL1"
CKPT_MAGIC = b"REPROCKP1"

#: Blob names the durable-database protocol uses on its disk.
JOURNAL_BLOB = "wal"
CHECKPOINT_BLOB = "checkpoint"
JOURNAL_TMP = "wal.tmp"
CHECKPOINT_TMP = "checkpoint.tmp"

#: KeyRing purpose for the journal MAC — independent of every data key.
JOURNAL_MAC_PURPOSE = "journal-mac"


def journal_mac(keys: KeyRing) -> MAC:
    """The journal's commit-marker MAC: HMAC-SHA256 under its own key."""
    return HMACMAC(keys.derive(JOURNAL_MAC_PURPOSE, 32))


@dataclass(frozen=True)
class JournalRecord:
    """One journaled engine mutation."""

    seq: int
    op: str
    payload: bytes

    def mac_message(self) -> bytes:
        """The bytes the commit marker authenticates."""
        return struct.pack(">q", self.seq) + self.op.encode("utf-8") + self.payload


def encode_record(record: JournalRecord, mac: MAC) -> bytes:
    """One record, framed and committed (MAC tag appended)."""
    out = io.BytesIO()
    _write_int(out, record.seq)
    _write_text(out, record.op)
    _write_bytes(out, record.payload)
    _write_bytes(out, mac.tag(record.mac_message()))
    return out.getvalue()


def encode_journal_header(generation: int) -> bytes:
    out = io.BytesIO()
    out.write(WAL_MAGIC)
    _write_int(out, generation)
    return out.getvalue()


@dataclass
class JournalScan:
    """Everything one pass over a journal blob establishes.

    ``records`` holds the committed prefix; ``truncated_at`` is the blob
    offset of the first byte that did not commit (None when the whole
    blob committed), with ``truncated_reason`` saying why.
    """

    generation: int = 0
    header_ok: bool = False
    records: list[JournalRecord] = field(default_factory=list)
    truncated_at: int | None = None
    truncated_reason: str | None = None

    @property
    def clean(self) -> bool:
        return self.header_ok and self.truncated_at is None


def scan_journal(blob: bytes, mac: MAC) -> JournalScan:
    """Parse a journal blob, truncating at the first torn or
    unauthenticated suffix.  Never raises on malformed input."""
    scan = JournalScan()
    reader = _Reader(blob)
    try:
        reader.expect(WAL_MAGIC)
        scan.generation = reader.read_int()
    except StorageFormatError as exc:
        scan.truncated_at = 0
        scan.truncated_reason = f"unusable journal header: {exc}"
        return scan
    scan.header_ok = True

    previous_seq: int | None = None
    while reader.remaining:
        record_start = reader.offset
        try:
            seq = reader.read_int()
            op = reader.read_text()
            payload = reader.read_bytes()
            tag = reader.read_bytes()
        except StorageFormatError as exc:
            scan.truncated_at = record_start
            scan.truncated_reason = f"torn record: {exc}"
            return scan
        record = JournalRecord(seq, op, payload)
        if not mac.verify(record.mac_message(), tag):
            scan.truncated_at = record_start
            scan.truncated_reason = "unauthenticated record (bad commit marker)"
            return scan
        if previous_seq is not None and seq != previous_seq + 1:
            scan.truncated_at = record_start
            scan.truncated_reason = (
                f"sequence break: record {seq} after {previous_seq}"
            )
            return scan
        previous_seq = seq
        scan.records.append(record)
    return scan


class Journal:
    """The append-only journal blob on one disk."""

    def __init__(
        self, disk: VirtualDisk, mac: MAC, name: str = JOURNAL_BLOB
    ) -> None:
        self._disk = disk
        self._mac = mac
        self.name = name

    def exists(self) -> bool:
        return self._disk.exists(self.name)

    def reset(self, generation: int) -> None:
        """Start a fresh, empty journal atomically (temp + rename)."""
        tmp = self.name + ".tmp"
        self._disk.write(tmp, encode_journal_header(generation))
        self._disk.sync(tmp)
        self._disk.rename(tmp, self.name)

    def append(self, record: JournalRecord) -> None:
        """Append one record and make it durable — the commit point."""
        if _TRACER.enabled:
            with _TRACER.span("wal.append", op=record.op) as span:
                encoded = encode_record(record, self._mac)
                span.add_cost("bytes_written", len(encoded))
                self._disk.append(self.name, encoded)
                self._disk.sync(self.name)
            return
        self._disk.append(self.name, encode_record(record, self._mac))
        self._disk.sync(self.name)

    def scan(self) -> JournalScan:
        """Scan the blob; a missing journal reads as empty-and-torn."""
        if _TRACER.enabled:
            with _TRACER.span("wal.scan") as span:
                scan = self._scan()
                span.add_cost("records", len(scan.records))
                return scan
        return self._scan()

    def _scan(self) -> JournalScan:
        try:
            blob = self._disk.read(self.name)
        except DiskError:
            scan = JournalScan()
            scan.truncated_at = 0
            scan.truncated_reason = "journal blob missing"
            return scan
        return scan_journal(blob, self._mac)


# ---------------------------------------------------------------------------
# Checkpoint blob
# ---------------------------------------------------------------------------

@dataclass
class CheckpointRecord:
    """A decoded checkpoint blob plus its verification status.

    ``status`` is ``"ok"``, ``"unauthenticated"`` (framed fine, MAC
    failed — the image bytes are still available for resilient salvage),
    or ``"malformed"`` (framing broke; ``image`` holds whatever prefix
    could be extracted, possibly ``None``).
    """

    status: str
    generation: int = 0
    applied_seq: int = 0
    image: bytes | None = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _checkpoint_mac_message(generation: int, applied_seq: int, image: bytes) -> bytes:
    return struct.pack(">q", generation) + struct.pack(">q", applied_seq) + image


def encode_checkpoint(
    generation: int, applied_seq: int, image: bytes, mac: MAC
) -> bytes:
    out = io.BytesIO()
    out.write(CKPT_MAGIC)
    _write_int(out, generation)
    _write_int(out, applied_seq)
    _write_bytes(out, image)
    _write_bytes(out, mac.tag(_checkpoint_mac_message(generation, applied_seq, image)))
    return out.getvalue()


def decode_checkpoint(blob: bytes, mac: MAC) -> CheckpointRecord:
    """Decode and verify a checkpoint blob.  Never raises: a damaged
    blob comes back with a non-``ok`` status and best-effort fields."""
    reader = _Reader(blob)
    record = CheckpointRecord(status="malformed")
    try:
        reader.expect(CKPT_MAGIC)
        record.generation = reader.read_int()
        record.applied_seq = reader.read_int()
        record.image = reader.read_bytes()
    except StorageFormatError as exc:
        record.detail = str(exc)
        return record
    try:
        tag = reader.read_bytes()
    except StorageFormatError as exc:
        record.status = "unauthenticated"
        record.detail = f"commit tag unreadable: {exc}"
        return record
    if reader.remaining:
        record.status = "unauthenticated"
        record.detail = f"{reader.remaining} trailing byte(s) after checkpoint tag"
        return record
    message = _checkpoint_mac_message(
        record.generation, record.applied_seq, record.image
    )
    if not mac.verify(message, tag):
        record.status = "unauthenticated"
        record.detail = "checkpoint MAC failed verification"
        return record
    record.status = "ok"
    return record
