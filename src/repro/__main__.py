"""Command-line driver: ``python -m repro <command>``.

Commands:

* ``demo``     — run the quickstart scenario end to end.
* ``attacks``  — execute every Sect. 3 attack against the broken and
  fixed configurations and print the outcome table.
* ``overhead`` — print the Sect. 4 storage / invocation tables.
* ``collisions [N]`` — rerun the paper's µ collision experiment with N
  trial addresses (default 1024).
* ``faultcampaign [--seeds N]`` — sweep N seeded storage faults
  (default 25) across every scheme configuration and print the
  detection matrix; exits non-zero if the matrix contradicts the
  paper's claims or the resilient loader ever raises.
* ``bench [--quick] [--scenarios a,b,...] [--out PATH]`` — run the
  benchmark harness over every scheme configuration, write a
  ``BENCH_<n>.json`` artifact (auto-numbered unless ``--out`` names a
  path), and exit non-zero if any measured count diverges from the
  paper's Sect. 4 cost model.
"""

from __future__ import annotations

import sys

from repro.analysis.collision import run_collision_experiment
from repro.analysis.overhead import (
    PAPER_STORAGE_OCTETS,
    measure_blockcipher_invocations,
    measure_storage_overhead,
    paper_invocation_formula,
)
from repro.analysis.report import format_table


def _demo() -> int:
    from repro import EncryptedDatabase, EncryptionConfig
    from repro.engine import Column, ColumnType, PointQuery, TableSchema

    db = EncryptedDatabase(
        b"demo-master-key-0123456789abcdef", EncryptionConfig.paper_fixed("eax")
    )
    db.create_table(TableSchema("notes", [Column("text", ColumnType.TEXT)]))
    row = db.insert("notes", ["the fix works"])
    db.create_index("notes_text", "notes", "text")
    result = PointQuery("notes", "text", "the fix works").execute(db)
    stored = db.storage_view().cell("notes", row, 0)
    print("inserted, indexed, queried:", result.row_ids())
    print("stored bytes:", stored.hex()[:64], "...")
    print("plaintext visible in storage:", b"the fix works" in stored)
    return 0


def _attacks() -> int:
    from repro.attacks import (
        evaluate_append_forgery,
        evaluate_index_linkage,
        evaluate_mac_interaction,
        evaluate_pattern_matching,
    )
    from repro.core.encrypted_db import EncryptionConfig
    from repro.workloads.datasets import build_documents_db

    rows, groups = 16, 4
    pairs = {
        (i, j) for i in range(rows) for j in range(i + 1, rows)
        if i % groups == j % groups
    }
    table = []
    for label, config in [
        ("broken ([3]+[12], zero-IV)", EncryptionConfig(
            cell_scheme="append", index_scheme="dbsec2005")),
        ("fixed (AEAD/EAX)", EncryptionConfig.paper_fixed("eax")),
    ]:
        db = build_documents_db(config, rows=rows, groups=groups)
        storage = db.storage_view()
        index = db.index("documents_by_body").structure
        truth = {}
        for entry in index.raw_rows():
            if entry.is_leaf and not entry.deleted:
                _, table_row = index.codec.decode(
                    entry.payload, entry.refs(index.index_table_id)
                )
                truth[entry.row_id] = table_row
        outcomes = [
            evaluate_pattern_matching(storage, "documents", 1, pairs, label),
            evaluate_append_forgery(db, storage, "documents", 1, "body", 64, label),
            evaluate_index_linkage(
                storage, "documents_by_body", "documents", 1, truth, label
            ),
        ]
        if config.index_scheme == "dbsec2005":
            outcomes.append(evaluate_mac_interaction(index, 64, label))
        for outcome in outcomes:
            table.append([label, outcome.attack, outcome.succeeded])
    print(format_table(["configuration", "attack", "succeeded"], table))
    return 0


def _overhead() -> int:
    storage_rows = []
    for scheme in ("eax", "ocb", "ccfb", "gcm"):
        overhead = measure_storage_overhead(scheme, b"P" * 48)
        storage_rows.append([
            scheme, overhead.total_octets,
            PAPER_STORAGE_OCTETS.get(scheme, "-"),
        ])
    print(format_table(
        ["scheme", "measured octets/entry", "paper"], storage_rows,
        caption="storage overhead (Sect. 4)",
    ))
    print()
    invocation_rows = []
    for n in (1, 4, 16):
        eax = measure_blockcipher_invocations("eax", n, 1)
        ocb = measure_blockcipher_invocations("ocb", n, 1)
        invocation_rows.append([
            n, eax.total_calls, paper_invocation_formula("eax", n, 1),
            ocb.total_calls, paper_invocation_formula("ocb", n, 1),
        ])
    print(format_table(
        ["n", "EAX", "2n+m+1", "OCB", "n+m+5"], invocation_rows,
        caption="blockcipher invocations, m=1 (Sect. 4)",
    ))
    return 0


class UsageError(Exception):
    """Bad command-line input; the driver prints usage and exits 2."""


def _parse_int(text: str, what: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise UsageError(f"{what} must be an integer, got {text!r}") from None


def _faultcampaign(argv: list[str]) -> int:
    from repro.robustness import run_campaign

    seeds = 25
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--seeds":
            if not args:
                raise UsageError("--seeds requires a value")
            seeds = _parse_int(args.pop(0), "--seeds")
        elif arg.startswith("--seeds="):
            seeds = _parse_int(arg.split("=", 1)[1], "--seeds")
        else:
            raise UsageError(f"unknown faultcampaign argument {arg!r}")
    result = run_campaign(seeds=seeds)
    print(result.format_matrix())
    recovered = sum(r.rows_recovered for r in result.records)
    quarantined = sum(r.rows_quarantined for r in result.records)
    print()
    print(
        f"resilient loader: {len(result.records)} faulted images, "
        f"{len(result.resilient_failures)} crashes, "
        f"{recovered} rows recovered, {quarantined} rows quarantined"
    )
    violations = result.check_paper_expectations()
    if violations:
        print()
        for violation in violations:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    print("matrix consistent with the paper's claims "
          "(broken schemes corrupt silently, AEAD never does)")
    return 0


def _collisions(argv: list[str]) -> int:
    if len(argv) > 1:
        raise UsageError("collisions takes at most one argument (trial count)")
    trials = _parse_int(argv[0], "collisions trial count") if argv else 1024
    experiment = run_collision_experiment(trials)
    print(experiment)
    if trials == 1024:
        print("paper's run on its own address set found 6")
    return 0


def _bench(argv: list[str]) -> int:
    from repro.bench import (
        divergences,
        next_bench_path,
        run_bench,
        summarize,
        write_report,
    )

    quick = False
    scenario_names: list[str] | None = None
    out: str | None = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--quick":
            quick = True
        elif arg == "--scenarios" or arg.startswith("--scenarios="):
            if arg == "--scenarios":
                if not args:
                    raise UsageError("--scenarios requires a value")
                value = args.pop(0)
            else:
                value = arg.split("=", 1)[1]
            scenario_names = [s for s in value.split(",") if s]
        elif arg == "--out" or arg.startswith("--out="):
            if arg == "--out":
                if not args:
                    raise UsageError("--out requires a value")
                out = args.pop(0)
            else:
                out = arg.split("=", 1)[1]
        else:
            raise UsageError(f"unknown bench argument {arg!r}")

    try:
        report = run_bench(scenario_names, quick=quick)
    except ValueError as exc:
        raise UsageError(str(exc)) from None

    path = write_report(report, out if out is not None else next_bench_path())
    print(summarize(report))
    print(f"report written to {path}")
    if not report["ok"]:
        print()
        for failure in divergences(report):
            print(f"DIVERGENCE: {failure}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__)
        return 2
    command, *rest = argv
    try:
        if command == "demo":
            return _demo()
        if command == "attacks":
            return _attacks()
        if command == "overhead":
            return _overhead()
        if command == "collisions":
            return _collisions(rest)
        if command == "faultcampaign":
            return _faultcampaign(rest)
        if command == "bench":
            return _bench(rest)
    except UsageError as exc:
        print(f"error: {exc}\n", file=sys.stderr)
        print(__doc__)
        return 2
    print(f"unknown command {command!r}\n", file=sys.stderr)
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
