"""Command-line driver: ``python -m repro <command>``.

Commands:

* ``demo``     — run the quickstart scenario end to end.
* ``attacks``  — execute every Sect. 3 attack against the broken and
  fixed configurations and print the outcome table.
* ``overhead`` — print the Sect. 4 storage / invocation tables.
* ``collisions [N]`` — rerun the paper's µ collision experiment with N
  trial addresses (default 1024).
* ``faultcampaign [--seeds N]`` — sweep N seeded storage faults
  (default 25) across every scheme configuration and print the
  detection matrix; exits non-zero if the matrix contradicts the
  paper's claims or the resilient loader ever raises.
* ``bench [--quick] [--scenarios a,b,...] [--out PATH] [--force]`` —
  run the benchmark harness over every scheme configuration, write a
  ``BENCH_<n>.json`` artifact (auto-numbered unless ``--out`` names a
  path; an existing file is never overwritten unless ``--force``), and
  exit non-zero if any measured count diverges from the
  paper's Sect. 4 cost model.  With ``--baseline BENCH_<n>.json``
  additionally compare per-scenario wall time and cipher counts
  against that report (``--threshold F`` sets the fractional wall-time
  tolerance, default 0.25; ``--delta-out PATH`` writes the comparison
  document) and exit non-zero on regression.
* ``backendparity [--out PATH]`` — cross-backend ciphertext-equivalence
  sweep: every registered block-cipher backend (pure reference,
  optimized T-table, any plugin) must emit byte-identical raw blocks,
  byte-identical database images for all six campaign configurations,
  and the batched ``insert_many`` path must match the sequential loop.
  Prints the SHA-256 parity matrix, optionally writes it as JSON, and
  exits non-zero on any divergence.
* ``crashcampaign [--rows N] [--limit N] [--configs slug,...]
  [--modes m,...] [--phases p,...]`` — power-cut a journaled database
  at every write boundary of a seeded workload (or N evenly-spaced
  boundaries with ``--limit``) under each crash mode (default
  ``cut,torn,drop``) and assert recovery always lands on exactly the
  pre- or post-operation state; also checks audit-hook byte-neutrality
  and flaky-backend retry equivalence.  ``--phases`` selects the
  mutation sweep, the sharded key-rotation sweep (every rotation
  protocol write boundary; shards must recover to exactly the old or
  new key epoch), or both (the default).  Exits non-zero on any
  violation.
* ``chaoscampaign [--steps N] [--seed N] [--shards N] [--replicas N]
  [--no-flaky] [--configs slug,...]`` — the unified resilience
  campaign: per configuration, drive one sharded keyspace on an N-way
  mirrored disk (each replica behind a flaky/retrying wrapper stack
  unless ``--no-flaky``) through a seeded schedule interleaving
  inserts, checkpoints, key rotations, whole-host crashes with
  remount, single-replica corruptions, anti-entropy scrubs, and full
  lockstep rollbacks.  Asserts no acknowledged commit is ever lost,
  every rollback raises ``StaleImageError``, every single-replica
  corruption is repaired, and the replicas converge byte-for-byte.
  Exits non-zero on any violation.
* ``scrub --replica PATH --replica PATH [--replica PATH ...]
  [--old-key HEX | --old-seed TEXT]... [--config slug] [--shards N]
  [--no-repair] [--demo] [--inject-fault BLOB]`` — one anti-entropy
  pass over a sharded keyspace mirrored across the replica
  directories: verify every journal, checkpoint, staged rotation
  checkpoint, and the cross-shard manifest MAC-by-MAC on every
  replica, elect the freshest authentic copy per blob, and rewrite
  divergent or corrupt replicas from it (``--no-repair`` reports
  only).  ``--demo`` seeds a small demo keyspace when the replicas
  are empty; ``--inject-fault BLOB`` corrupts the named blob on every
  replica first (an unrepairable fault — the negative control).
  Exits 1 if any blob has no authentic copy anywhere.
* ``rotate --dir PATH (--new-key HEX | --new-seed TEXT)
  [--old-key HEX | --old-seed TEXT]... [--shards N] [--config slug]
  [--shard ID]`` — online master-key rotation of a sharded keyspace
  stored under ``--dir``.  The old key chain is given oldest-first via
  repeatable ``--old-key``/``--old-seed`` flags (default: the demo
  seed ``repro-demo-master``); a fresh directory is created, seeded
  with a small demo dataset, and then rotated.  ``--shard`` rotates a
  single shard; omitting the new key *resumes* an interrupted rotation
  (the supplied chain must already hold the target epoch — lagging
  shards are brought up to its head).  Exits 2 on usage errors, 1 if
  any shard fails post-rotation verification (wrong epoch, degraded
  mount, manifest failure, or lost rows).
* ``audit <log.jsonl> [--metrics-jsonl PATH] [--metrics-prom PATH]`` —
  replay a security audit log through the streaming leakage monitor
  and print the six probe verdicts; optionally export the ``leak.*``
  metric snapshot as JSONL or Prometheus text.
* ``audit --live [--configs slug,...] [--log-dir DIR]`` — run the
  seeded leakage workload with the audit log attached for each named
  configuration (default: all six; slugs: plain, xor, append,
  dbsec2005, aead-eax, aead-ocb), cross-validate the streaming
  verdicts against the offline ``analysis.leakage`` matrix and against
  a replay of the captured events, and exit non-zero on any mismatch.
  ``--log-dir`` persists per-configuration event logs and metric
  snapshots.
* ``trace --out PATH [--scenario NAME] [--configs slug,...]`` — run a
  traced query workload (scenarios: point_query, range_query; default
  point_query) for each named configuration and export every span as
  Chrome trace-event JSON (open in Perfetto or chrome://tracing); the
  document header embeds the workload seed, configuration names, git
  describe, and interpreter version.
* ``explain <scenario> [--configs slug,...]`` — EXPLAIN ANALYZE for
  the encrypted database: run the scenario per configuration and print
  each query's per-operator profile (wall time, bytes, measured vs
  Sect.-4-predicted blockcipher invocations); exits non-zero if any
  per-query measured count diverges from the analytic model.
* ``monitor [--scenario NAME] [--configs slug,...] [--quick]
  [--out HEALTH.json] [--baseline BENCH_<n>.json] [--rules FILE.json]
  [--prom PATH] [--jsonl PATH] [--follow] [--inject FAULT]
  [--limit N]`` — run a bench scenario (default ``shard_rotation``,
  default config ``aead-eax``) or the ``rotation_campaign`` sweep
  under the telemetry hub, evaluate the health-rule set (Sect. 4
  drift, WAL replay/fallback, shard degradation, leakage budgets, and
  — with ``--baseline`` — p99 regression; ``--rules`` adds declarative
  rules from JSON) against the labeled time-series, and write a
  schema-validated ``HEALTH.json``.  ``--follow`` prints a live
  per-tick dashboard; ``--prom``/``--jsonl`` export the labeled
  series; ``--inject cipher-miscount`` / ``--inject wal-fallback``
  simulate faults to prove the rules fire.  Exits 1 when any alert
  fires, 2 on usage errors.
* ``forensics <FLIGHT.json> [--scorecard] [--timeline]`` — grade a
  recorded flight document: join the typed fault-injection ground
  truth against the detections the stack emitted, print the per-class
  detection scorecard (rate, latency in ticks, false positives) and —
  with ``--timeline`` — the causally ordered incident timeline with
  root-cause attribution.  Exits 1 when any gated fault class was
  missed or any false positive exists.
* ``forensics --chaos [--steps N] [--seed N] [--shards N]
  [--replicas N] [--no-flaky] [--configs slug,...] [--out PATH]
  [--timeline]`` — run the seeded chaos campaign plus the gated
  control faults under the flight recorder, write the flight document
  to ``--out``, and grade it requiring 100 % detection of every gated
  class (tamper, rollback, unrepairable) and zero false alarms.
* ``forensics --healthy [--scenario NAME] [--inject FAULT]
  [--limit N] [--out PATH]`` — the false-alarm control: a monitored
  run with no injected faults must record zero incidents (no alerts,
  no typed errors, no unmatched detections); exits 1 otherwise.
  ``--inject`` passes monitor fault injections through, making a
  non-zero exit the *expected* outcome (CI's negative control).

All commands exit 0 on success, 1 on a finding (divergence, violation,
alert, missed detection), and 2 on a usage error.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.collision import run_collision_experiment
from repro.analysis.overhead import (
    PAPER_STORAGE_OCTETS,
    measure_blockcipher_invocations,
    measure_storage_overhead,
    paper_invocation_formula,
)
from repro.analysis.report import format_table


def _demo(argv: list[str]) -> int:
    if argv:
        raise UsageError(f"demo takes no arguments, got {argv[0]!r}")
    from repro import EncryptedDatabase, EncryptionConfig
    from repro.engine import Column, ColumnType, PointQuery, TableSchema

    db = EncryptedDatabase(
        b"demo-master-key-0123456789abcdef", EncryptionConfig.paper_fixed("eax")
    )
    db.create_table(TableSchema("notes", [Column("text", ColumnType.TEXT)]))
    row = db.insert("notes", ["the fix works"])
    db.create_index("notes_text", "notes", "text")
    result = PointQuery("notes", "text", "the fix works").execute(db)
    stored = db.storage_view().cell("notes", row, 0)
    print("inserted, indexed, queried:", result.row_ids())
    print("stored bytes:", stored.hex()[:64], "...")
    print("plaintext visible in storage:", b"the fix works" in stored)
    return 0


def _attacks(argv: list[str]) -> int:
    if argv:
        raise UsageError(f"attacks takes no arguments, got {argv[0]!r}")
    from repro.attacks import (
        evaluate_append_forgery,
        evaluate_index_linkage,
        evaluate_mac_interaction,
        evaluate_pattern_matching,
    )
    from repro.core.encrypted_db import EncryptionConfig
    from repro.workloads.datasets import build_documents_db

    rows, groups = 16, 4
    pairs = {
        (i, j) for i in range(rows) for j in range(i + 1, rows)
        if i % groups == j % groups
    }
    table = []
    for label, config in [
        ("broken ([3]+[12], zero-IV)", EncryptionConfig(
            cell_scheme="append", index_scheme="dbsec2005")),
        ("fixed (AEAD/EAX)", EncryptionConfig.paper_fixed("eax")),
    ]:
        db = build_documents_db(config, rows=rows, groups=groups)
        storage = db.storage_view()
        index = db.index("documents_by_body").structure
        truth = {}
        for entry in index.raw_rows():
            if entry.is_leaf and not entry.deleted:
                _, table_row = index.codec.decode(
                    entry.payload, entry.refs(index.index_table_id)
                )
                truth[entry.row_id] = table_row
        outcomes = [
            evaluate_pattern_matching(storage, "documents", 1, pairs, label),
            evaluate_append_forgery(db, storage, "documents", 1, "body", 64, label),
            evaluate_index_linkage(
                storage, "documents_by_body", "documents", 1, truth, label
            ),
        ]
        if config.index_scheme == "dbsec2005":
            outcomes.append(evaluate_mac_interaction(index, 64, label))
        for outcome in outcomes:
            table.append([label, outcome.attack, outcome.succeeded])
    print(format_table(["configuration", "attack", "succeeded"], table))
    return 0


def _overhead(argv: list[str]) -> int:
    if argv:
        raise UsageError(f"overhead takes no arguments, got {argv[0]!r}")
    storage_rows = []
    for scheme in ("eax", "ocb", "ccfb", "gcm"):
        overhead = measure_storage_overhead(scheme, b"P" * 48)
        storage_rows.append([
            scheme, overhead.total_octets,
            PAPER_STORAGE_OCTETS.get(scheme, "-"),
        ])
    print(format_table(
        ["scheme", "measured octets/entry", "paper"], storage_rows,
        caption="storage overhead (Sect. 4)",
    ))
    print()
    invocation_rows = []
    for n in (1, 4, 16):
        eax = measure_blockcipher_invocations("eax", n, 1)
        ocb = measure_blockcipher_invocations("ocb", n, 1)
        invocation_rows.append([
            n, eax.total_calls, paper_invocation_formula("eax", n, 1),
            ocb.total_calls, paper_invocation_formula("ocb", n, 1),
        ])
    print(format_table(
        ["n", "EAX", "2n+m+1", "OCB", "n+m+5"], invocation_rows,
        caption="blockcipher invocations, m=1 (Sect. 4)",
    ))
    return 0


class UsageError(Exception):
    """Bad command-line input; the driver prints usage and exits 2."""


def _parse_int(text: str, what: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise UsageError(f"{what} must be an integer, got {text!r}") from None


def _faultcampaign(argv: list[str]) -> int:
    from repro.robustness import run_campaign

    seeds = 25
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--seeds":
            if not args:
                raise UsageError("--seeds requires a value")
            seeds = _parse_int(args.pop(0), "--seeds")
        elif arg.startswith("--seeds="):
            seeds = _parse_int(arg.split("=", 1)[1], "--seeds")
        else:
            raise UsageError(f"unknown faultcampaign argument {arg!r}")
    result = run_campaign(seeds=seeds)
    print(result.format_matrix())
    recovered = sum(r.rows_recovered for r in result.records)
    quarantined = sum(r.rows_quarantined for r in result.records)
    print()
    print(
        f"resilient loader: {len(result.records)} faulted images, "
        f"{len(result.resilient_failures)} crashes, "
        f"{recovered} rows recovered, {quarantined} rows quarantined"
    )
    violations = result.check_paper_expectations()
    if violations:
        print()
        for violation in violations:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    print("matrix consistent with the paper's claims "
          "(broken schemes corrupt silently, AEAD never does)")
    return 0


def _crashcampaign(argv: list[str]) -> int:
    from repro.durability import run_crash_campaign
    from repro.durability.crashcampaign import CAMPAIGN_PHASES, CRASH_MODES
    from repro.observability.leakmon import CONFIG_SLUGS
    from repro.robustness.campaign import default_campaign_configs

    rows = 5
    limit: int | None = None
    config_slugs: list[str] | None = None
    modes: list[str] | None = None
    phases: list[str] | None = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--rows" or arg.startswith("--rows="):
            rows = _parse_int(_flag_value(arg, args, "--rows"), "--rows")
        elif arg == "--limit" or arg.startswith("--limit="):
            limit = _parse_int(_flag_value(arg, args, "--limit"), "--limit")
        elif arg == "--configs" or arg.startswith("--configs="):
            value = _flag_value(arg, args, "--configs")
            config_slugs = [s for s in value.split(",") if s]
        elif arg == "--modes" or arg.startswith("--modes="):
            value = _flag_value(arg, args, "--modes")
            modes = [m for m in value.split(",") if m]
        elif arg == "--phases" or arg.startswith("--phases="):
            value = _flag_value(arg, args, "--phases")
            phases = [p for p in value.split(",") if p]
        else:
            raise UsageError(f"unknown crashcampaign argument {arg!r}")
    if rows < 1:
        raise UsageError("--rows must be at least 1")
    if limit is not None and limit < 1:
        raise UsageError("--limit must be at least 1")
    if phases is not None:
        bad = [p for p in phases if p not in CAMPAIGN_PHASES]
        if bad or not phases:
            raise UsageError(
                f"unknown or empty campaign phase(s); "
                f"available: {', '.join(CAMPAIGN_PHASES)}"
            )

    configs = None
    if config_slugs is not None:
        unknown = [slug for slug in config_slugs if slug not in CONFIG_SLUGS]
        if unknown or not config_slugs:
            raise UsageError(
                f"unknown or empty configuration slug(s); "
                f"available: {', '.join(CONFIG_SLUGS)}"
            )
        by_label = dict(default_campaign_configs())
        configs = [
            (CONFIG_SLUGS[slug], by_label[CONFIG_SLUGS[slug]])
            for slug in config_slugs
        ]
    if modes is not None:
        bad = [m for m in modes if m not in CRASH_MODES]
        if bad or not modes:
            raise UsageError(
                f"unknown or empty crash mode(s); "
                f"available: {', '.join(CRASH_MODES)}"
            )

    result = run_crash_campaign(
        rows=rows,
        limit=limit,
        configs=configs,
        modes=tuple(modes) if modes is not None else CRASH_MODES,
        phases=tuple(phases) if phases is not None else CAMPAIGN_PHASES,
    )
    print(result.format_matrix())
    if not result.ok:
        print()
        for violation in result.violations:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    messages = []
    if result.per_config:
        messages.append(
            "every crash recovered to exactly the pre- or post-operation "
            "state; audit hooks and retried transient failures are "
            "byte-neutral"
        )
    if result.rotation is not None:
        messages.append(
            "every mid-rotation crash recovered each shard to exactly the "
            "old or the new key epoch with the manifest verifying"
        )
    print("; ".join(messages))
    return 0


def _chaoscampaign(argv: list[str]) -> int:
    from repro.observability.leakmon import CONFIG_SLUGS
    from repro.resilience.chaos import run_chaos_campaign
    from repro.robustness.campaign import default_campaign_configs

    steps = 60
    seed = 0
    shards = 2
    replicas = 3
    flaky = True
    config_slugs: list[str] | None = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--steps" or arg.startswith("--steps="):
            steps = _parse_int(_flag_value(arg, args, "--steps"), "--steps")
        elif arg == "--seed" or arg.startswith("--seed="):
            seed = _parse_int(_flag_value(arg, args, "--seed"), "--seed")
        elif arg == "--shards" or arg.startswith("--shards="):
            shards = _parse_int(_flag_value(arg, args, "--shards"), "--shards")
        elif arg == "--replicas" or arg.startswith("--replicas="):
            replicas = _parse_int(
                _flag_value(arg, args, "--replicas"), "--replicas"
            )
        elif arg == "--no-flaky":
            flaky = False
        elif arg == "--configs" or arg.startswith("--configs="):
            value = _flag_value(arg, args, "--configs")
            config_slugs = [s for s in value.split(",") if s]
        else:
            raise UsageError(f"unknown chaoscampaign argument {arg!r}")
    if steps < 1:
        raise UsageError("--steps must be at least 1")
    if shards < 1:
        raise UsageError("--shards must be at least 1")
    if replicas < 2:
        raise UsageError("--replicas must be at least 2")
    configs = None
    if config_slugs is not None:
        unknown = [slug for slug in config_slugs if slug not in CONFIG_SLUGS]
        if unknown or not config_slugs:
            raise UsageError(
                f"unknown or empty configuration slug(s); "
                f"available: {', '.join(CONFIG_SLUGS)}"
            )
        by_label = dict(default_campaign_configs())
        configs = [
            (CONFIG_SLUGS[slug], by_label[CONFIG_SLUGS[slug]])
            for slug in config_slugs
        ]

    result = run_chaos_campaign(
        steps=steps,
        seed=seed,
        shard_count=shards,
        replicas=replicas,
        flaky=flaky,
        configs=configs,
    )
    print(result.format_matrix())
    if not result.ok:
        print()
        for violation in result.violations:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    rollbacks = sum(r.rollbacks_injected for r in result.per_config)
    corruptions = sum(r.corruptions for r in result.per_config)
    print(
        f"no acknowledged commit lost, all {rollbacks} rollback(s) "
        f"detected, all {corruptions} single-replica corruption(s) "
        f"repaired, replicas converged"
    )
    return 0


def _scrub(argv: list[str]) -> int:
    from repro.core.keys import KeyChain
    from repro.durability.vdisk import FileDisk
    from repro.engine.schema import Column, ColumnType, TableSchema
    from repro.errors import DiskError
    from repro.observability.leakmon import CONFIG_SLUGS
    from repro.resilience import MirroredDisk, scrub_keyspace
    from repro.robustness.campaign import default_campaign_configs
    from repro.sharding import ShardedKeyspace

    replicas: list[str] = []
    old_masters: list[bytes] = []
    repair = True
    demo = False
    inject: str | None = None
    shards = 2
    slug = "aead-eax"
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--replica" or arg.startswith("--replica="):
            replicas.append(_flag_value(arg, args, "--replica"))
        elif arg == "--old-key" or arg.startswith("--old-key="):
            old_masters.append(
                _parse_key(_flag_value(arg, args, "--old-key"), "--old-key")
            )
        elif arg == "--old-seed" or arg.startswith("--old-seed="):
            old_masters.append(_seed_key(_flag_value(arg, args, "--old-seed")))
        elif arg == "--no-repair":
            repair = False
        elif arg == "--demo":
            demo = True
        elif arg == "--inject-fault" or arg.startswith("--inject-fault="):
            inject = _flag_value(arg, args, "--inject-fault")
        elif arg == "--shards" or arg.startswith("--shards="):
            shards = _parse_int(_flag_value(arg, args, "--shards"), "--shards")
        elif arg == "--config" or arg.startswith("--config="):
            slug = _flag_value(arg, args, "--config")
        else:
            raise UsageError(f"unknown scrub argument {arg!r}")
    if len(replicas) < 2:
        raise UsageError("scrub requires at least two --replica PATH flags")
    if shards < 1:
        raise UsageError("--shards must be at least 1")
    if slug not in CONFIG_SLUGS:
        raise UsageError(
            f"unknown configuration slug {slug!r}; "
            f"available: {', '.join(CONFIG_SLUGS)}"
        )
    if not old_masters:
        old_masters = [_seed_key("repro-demo-master")]

    chain = KeyChain(old_masters)
    disks = [FileDisk(path) for path in replicas]
    mirror = MirroredDisk(disks)
    if demo and not mirror.names():
        config = dict(default_campaign_configs())[CONFIG_SLUGS[slug]]
        keyspace = ShardedKeyspace.open(
            mirror, chain, config, shard_count=shards
        )
        schema = TableSchema("people", [
            Column("id", ColumnType.INT),
            Column("name", ColumnType.TEXT),
            Column("city", ColumnType.TEXT, sensitive=False),
        ])
        keyspace.create_table(schema)
        for i in range(6):
            keyspace.insert("people", [i, f"name-{i:03d}", f"city-{i % 3}"])
        keyspace.checkpoint()
        print(
            f"created a fresh {shards}-shard demo keyspace across "
            f"{len(replicas)} replicas"
        )
    if inject is not None:
        # Corrupt the named blob on *every* replica: an unrepairable
        # fault the scrub must report (and exit non-zero on) — the CI
        # smoke test's negative control.
        flipped = 0
        for disk in disks:
            try:
                data = bytearray(disk.read(inject))
            except DiskError:
                continue
            data[0] ^= 0xFF
            disk.write(inject, bytes(data))
            disk.sync(inject)
            flipped += 1
        if flipped == 0:
            raise UsageError(f"--inject-fault: no replica holds {inject!r}")
        print(f"injected fault into {inject!r} on {flipped} replica(s)")

    report = scrub_keyspace(mirror, chain, repair=repair)
    print(report.format())
    if report.unrepaired:
        print()
        for name in report.unrepaired:
            print(
                f"UNREPAIRABLE: {name} has no authentic copy on any replica",
                file=sys.stderr,
            )
        return 1
    return 0


def _parse_key(value: str, what: str) -> bytes:
    try:
        key = bytes.fromhex(value)
    except ValueError:
        raise UsageError(f"{what} must be a hex string, got {value!r}") from None
    if len(key) < 16:
        raise UsageError(f"{what} must be at least 16 bytes (32 hex digits)")
    return key


def _seed_key(text: str) -> bytes:
    import hashlib

    return hashlib.sha256(text.encode("utf-8")).digest()


def _rotate(argv: list[str]) -> int:
    from repro.core.keys import KeyChain
    from repro.durability.vdisk import FileDisk
    from repro.engine.schema import Column, ColumnType, TableSchema
    from repro.observability.leakmon import CONFIG_SLUGS
    from repro.robustness.campaign import default_campaign_configs
    from repro.sharding import ShardedKeyspace

    directory: str | None = None
    old_masters: list[bytes] = []
    new_master: bytes | None = None
    shards = 2
    slug = "aead-eax"
    shard_id: str | None = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--dir" or arg.startswith("--dir="):
            directory = _flag_value(arg, args, "--dir")
        elif arg == "--old-key" or arg.startswith("--old-key="):
            old_masters.append(
                _parse_key(_flag_value(arg, args, "--old-key"), "--old-key")
            )
        elif arg == "--old-seed" or arg.startswith("--old-seed="):
            old_masters.append(_seed_key(_flag_value(arg, args, "--old-seed")))
        elif arg == "--new-key" or arg.startswith("--new-key="):
            if new_master is not None:
                raise UsageError("rotate takes exactly one new key")
            new_master = _parse_key(
                _flag_value(arg, args, "--new-key"), "--new-key"
            )
        elif arg == "--new-seed" or arg.startswith("--new-seed="):
            if new_master is not None:
                raise UsageError("rotate takes exactly one new key")
            new_master = _seed_key(_flag_value(arg, args, "--new-seed"))
        elif arg == "--shards" or arg.startswith("--shards="):
            shards = _parse_int(_flag_value(arg, args, "--shards"), "--shards")
        elif arg == "--config" or arg.startswith("--config="):
            slug = _flag_value(arg, args, "--config")
        elif arg == "--shard" or arg.startswith("--shard="):
            shard_id = _flag_value(arg, args, "--shard")
        else:
            raise UsageError(f"unknown rotate argument {arg!r}")
    if directory is None:
        raise UsageError("rotate requires --dir PATH")
    if new_master is None and len(old_masters) < 2:
        # Without a new key the only meaningful run is a *resume*: the
        # supplied chain already holds the target epoch and lagging
        # shards are brought up to its head.
        raise UsageError("rotate requires --new-key HEX or --new-seed TEXT")
    if shards < 1:
        raise UsageError("--shards must be at least 1")
    if slug not in CONFIG_SLUGS:
        raise UsageError(
            f"unknown configuration slug {slug!r}; "
            f"available: {', '.join(CONFIG_SLUGS)}"
        )
    if not old_masters:
        old_masters = [_seed_key("repro-demo-master")]
    if new_master is not None and new_master in old_masters:
        raise UsageError("the new key must differ from every old chain key")

    config = dict(default_campaign_configs())[CONFIG_SLUGS[slug]]
    chain = KeyChain(old_masters)
    keyspace = ShardedKeyspace.open(
        FileDisk(directory), chain, config, shard_count=shards
    )
    for issue in keyspace.recovery.issues:
        print(f"note: {issue}", file=sys.stderr)
    if keyspace.recovery.fresh:
        schema = TableSchema("people", [
            Column("id", ColumnType.INT),
            Column("name", ColumnType.TEXT),
            Column("city", ColumnType.TEXT, sensitive=False),
        ])
        keyspace.create_table(schema)
        for i in range(6):
            keyspace.insert("people", [i, f"name-{i:03d}", f"city-{i % 3}"])
        keyspace.create_index("people_by_id", "people", "id", kind="btree")
        keyspace.checkpoint()
        print(f"created a fresh {shards}-shard keyspace in {directory} "
              f"(6 demo rows)")
    if shard_id is not None and all(
        shard.shard_id != shard_id for shard in keyspace.shards
    ):
        raise UsageError(
            f"no shard {shard_id!r}; keyspace holds "
            f"{', '.join(shard.shard_id for shard in keyspace.shards)}"
        )
    before_counts = {
        name: keyspace.count(name)
        for name in keyspace.shards[0].manager.database.table_names
    }

    report = keyspace.rotate(new_master, shard_id=shard_id)
    print(format_table(
        ["shard", "from epoch", "to epoch", "cells", "index entries"],
        [
            [o.shard_id, o.from_epoch, o.to_epoch,
             o.cells_reencrypted, o.index_entries_reencrypted]
            for o in report.outcomes
        ],
        caption=f"rotation to key epoch {report.to_epoch}",
    ))
    for skipped in report.skipped:
        print(f"skipped {skipped} (already at epoch {report.to_epoch} "
              f"or degraded)")

    # Post-rotation verification: remount from disk under the extended
    # chain and require every rotated shard at the target epoch, clean.
    check = ShardedKeyspace.open(FileDisk(directory), chain, config)
    failures = []
    if check.recovery.manifest != "ok":
        failures.append(f"manifest does not verify: {check.recovery.manifest}")
    rotated = {outcome.shard_id for outcome in report.outcomes}
    for shard in check.shards:
        if shard.shard_id in rotated and shard.epoch != report.to_epoch:
            failures.append(
                f"{shard.shard_id} remounted at epoch {shard.epoch}, "
                f"expected {report.to_epoch}"
            )
        if shard.shard_id in rotated and shard.degraded:
            failures.append(f"{shard.shard_id} remounted degraded")
    for name, expected in before_counts.items():
        found = check.count(name)
        if found != expected:
            failures.append(
                f"table {name!r} holds {found} rows after rotation, "
                f"had {expected}"
            )
    if failures:
        print()
        for failure in failures:
            print(f"VERIFICATION FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"verified: {len(rotated)} shard(s) at epoch {report.to_epoch}, "
          f"manifest ok, row counts preserved")
    return 0


def _collisions(argv: list[str]) -> int:
    if len(argv) > 1:
        raise UsageError("collisions takes at most one argument (trial count)")
    trials = _parse_int(argv[0], "collisions trial count") if argv else 1024
    experiment = run_collision_experiment(trials)
    print(experiment)
    if trials == 1024:
        print("paper's run on its own address set found 6")
    return 0


def _flag_value(arg: str, args: list[str], flag: str) -> str:
    """Value of ``--flag value`` / ``--flag=value`` (shared convention)."""
    if arg == flag:
        if not args:
            raise UsageError(f"{flag} requires a value")
        return args.pop(0)
    return arg.split("=", 1)[1]


def _parse_float(text: str, what: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise UsageError(f"{what} must be a number, got {text!r}") from None


def _bench(argv: list[str]) -> int:
    from repro.bench import (
        DEFAULT_WALL_THRESHOLD,
        compare_reports,
        divergences,
        load_report,
        next_bench_path,
        run_bench,
        summarize,
        summarize_comparison,
        write_report,
    )

    quick = False
    force = False
    scenario_names: list[str] | None = None
    out: str | None = None
    baseline_path: str | None = None
    threshold = DEFAULT_WALL_THRESHOLD
    delta_out: str | None = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--quick":
            quick = True
        elif arg == "--force":
            force = True
        elif arg == "--scenarios" or arg.startswith("--scenarios="):
            value = _flag_value(arg, args, "--scenarios")
            scenario_names = [s for s in value.split(",") if s]
        elif arg == "--out" or arg.startswith("--out="):
            out = _flag_value(arg, args, "--out")
        elif arg == "--baseline" or arg.startswith("--baseline="):
            baseline_path = _flag_value(arg, args, "--baseline")
        elif arg == "--threshold" or arg.startswith("--threshold="):
            threshold = _parse_float(
                _flag_value(arg, args, "--threshold"), "--threshold"
            )
        elif arg == "--delta-out" or arg.startswith("--delta-out="):
            delta_out = _flag_value(arg, args, "--delta-out")
        else:
            raise UsageError(f"unknown bench argument {arg!r}")
    if threshold < 0:
        raise UsageError("--threshold must be non-negative")

    baseline = None
    if baseline_path is not None:
        try:
            baseline = load_report(baseline_path)
        except ValueError as exc:
            raise UsageError(str(exc)) from None

    try:
        report = run_bench(scenario_names, quick=quick)
    except ValueError as exc:
        raise UsageError(str(exc)) from None

    try:
        path = write_report(
            report, out if out is not None else next_bench_path(), overwrite=force
        )
    except FileExistsError as exc:
        raise UsageError(str(exc)) from None
    print(summarize(report))
    print(f"report written to {path}")
    failed = False
    if not report["ok"]:
        print()
        for failure in divergences(report):
            print(f"DIVERGENCE: {failure}", file=sys.stderr)
        failed = True
    if baseline is not None:
        delta = compare_reports(baseline, report, wall_threshold=threshold)
        print()
        print(summarize_comparison(delta))
        if delta_out is not None:
            import json as _json
            from pathlib import Path as _Path

            _Path(delta_out).write_text(
                _json.dumps(delta, indent=2, sort_keys=True) + "\n"
            )
            print(f"delta report written to {delta_out}")
        if not delta["ok"]:
            print()
            for regression in delta["regressions"]:
                print(f"REGRESSION: {regression}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


def _backendparity(argv: list[str]) -> int:
    """Cross-backend equivalence sweep: every registered cipher backend
    must produce byte-identical output at three layers — raw blocks,
    whole database images, and batched-vs-sequential engine paths."""
    import hashlib
    import json as _json

    from repro.engine.storage import dump_database
    from repro.primitives.backends import available_backends, get_backend
    from repro.robustness.campaign import build_campaign_db, default_campaign_configs

    out: str | None = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--out" or arg.startswith("--out="):
            out = _flag_value(arg, args, "--out")
        else:
            raise UsageError(f"unknown backendparity argument {arg!r}")

    backends = available_backends()
    reference = backends[0]
    failures: list[str] = []
    document: dict = {"backends": list(backends), "reference": reference}

    # Layer 1: raw block equivalence per algorithm, both directions,
    # single-block and batch paths, deterministic pseudorandom inputs.
    def material(tag: str, length: int) -> bytes:
        stream = b""
        counter = 0
        while len(stream) < length:
            stream += hashlib.sha256(b"parity/%s/%d" % (tag.encode(), counter)).digest()
            counter += 1
        return stream[:length]

    algorithms = [
        ("aes-128", 16),
        ("aes-192", 24),
        ("aes-256", 32),
        ("des", 8),
        ("3des", 24),
    ]
    primitive_rows: list[dict] = []
    for algorithm, key_size in algorithms:
        key = material("key/" + algorithm, key_size)
        ciphers = {name: get_backend(name).create(algorithm, key) for name in backends}
        block_size = ciphers[reference].block_size
        blocks = [
            material(f"block/{algorithm}/{i}", block_size) for i in range(32)
        ]
        expected = [ciphers[reference].encrypt_block(block) for block in blocks]
        row = {"algorithm": algorithm, "ok": True}
        for name, cipher in ciphers.items():
            sequential = [cipher.encrypt_block(block) for block in blocks]
            batched = cipher.encrypt_blocks(blocks)
            recovered = cipher.decrypt_blocks(batched)
            if sequential != expected or batched != expected or recovered != blocks:
                row["ok"] = False
                failures.append(f"primitive divergence: {algorithm} under {name!r}")
        primitive_rows.append(row)
    document["primitives"] = primitive_rows

    # Layer 2 + 3: whole-image SHA-256 per campaign config per backend,
    # plus the batched insert path against the sequential loop.
    rows = 8
    image_rows: list[dict] = []
    for label, config in default_campaign_configs():
        hashes: dict[str, str] = {}
        for name in backends:
            db = build_campaign_db(config.with_(backend=name), rows)
            hashes[name] = hashlib.sha256(dump_database(db)).hexdigest()
        batch_db = build_campaign_db(
            config.with_(backend=reference), rows, batched=True
        )
        batch_hash = hashlib.sha256(dump_database(batch_db)).hexdigest()
        ok = len(set(hashes.values())) == 1 and batch_hash == hashes[reference]
        if not ok:
            failures.append(f"image divergence: {label!r}: {hashes} batch={batch_hash}")
        image_rows.append(
            {"config": label, "ok": ok, "hashes": hashes, "batched": batch_hash}
        )
    document["images"] = image_rows
    document["ok"] = not failures

    print(
        format_table(
            ["config", "parity"]
            + [f"sha256 ({name})" for name in backends]
            + ["sha256 (batched)"],
            [
                [row["config"], "ok" if row["ok"] else "DIVERGED"]
                + [row["hashes"][name][:16] for name in backends]
                + [row["batched"][:16]]
                for row in image_rows
            ],
            caption=f"cross-backend image parity ({rows} rows per config)",
        )
    )
    print(
        f"primitive sweep: "
        f"{sum(1 for r in primitive_rows if r['ok'])}/{len(primitive_rows)} "
        f"algorithms byte-identical across {len(backends)} backends"
    )
    if out is not None:
        from pathlib import Path as _Path

        _Path(out).write_text(_json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"parity report written to {out}")
    for failure in failures:
        print(f"DIVERGENCE: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _audit_replay(
    log_path: str, metrics_jsonl: str | None, metrics_prom: str | None
) -> int:
    from repro.analysis.report import format_table
    from repro.observability import AuditError, LeakMonitor, read_events, write_snapshot
    from repro.observability.leakmon import PROBES

    try:
        events = read_events(log_path)
    except AuditError as exc:
        raise UsageError(str(exc)) from None
    monitor = LeakMonitor()
    monitor.feed_all(events)
    verdicts = monitor.verdicts()
    print(f"replayed {len(events)} events from {log_path}")
    print(
        format_table(
            ["probe", "leaked"],
            [[probe, verdicts[probe]] for probe in PROBES],
            caption="streaming leakage verdicts",
        )
    )
    counters = monitor.registry.snapshot()["counters"]
    for name in sorted(counters):
        if name.startswith("leak.") and name != "leak.events":
            print(f"  {name} = {counters[name]}")
    written = write_snapshot(
        monitor.registry.snapshot(),
        jsonl_path=metrics_jsonl,
        prometheus_path=metrics_prom,
    )
    for path in written:
        print(f"metrics written to {path}")
    return 0


def _audit_live(config_slugs: list[str] | None, log_dir: str | None) -> int:
    from pathlib import Path

    from repro.analysis.report import format_table
    from repro.observability import LeakMonitor, write_snapshot
    from repro.observability.leakmon import CONFIG_SLUGS, PROBES, run_live_profile
    from repro.robustness.campaign import default_campaign_configs

    if config_slugs is None:
        config_slugs = list(CONFIG_SLUGS)
    unknown = [slug for slug in config_slugs if slug not in CONFIG_SLUGS]
    if unknown:
        raise UsageError(
            f"unknown configuration slug(s) {', '.join(sorted(unknown))}; "
            f"available: {', '.join(CONFIG_SLUGS)}"
        )
    if not config_slugs:
        raise UsageError(
            f"no configurations selected; available: {', '.join(CONFIG_SLUGS)}"
        )
    directory = None
    if log_dir is not None:
        directory = Path(log_dir)
        directory.mkdir(parents=True, exist_ok=True)

    configs = dict(default_campaign_configs())
    rows = []
    mismatches = []
    for slug in config_slugs:
        label = CONFIG_SLUGS[slug]
        sink = directory / f"audit-{slug}.jsonl" if directory else None
        monitor, events, offline = run_live_profile(
            configs[label], label, sink_path=sink
        )
        streaming = monitor.verdicts()
        replayed = LeakMonitor()
        replayed.feed_all(events)
        replay_verdicts = replayed.verdicts()
        agree = streaming == offline == replay_verdicts
        rows.append(
            [label, len(events)]
            + [streaming[probe] for probe in PROBES]
            + [agree]
        )
        if not agree:
            for probe in PROBES:
                if not (
                    streaming[probe] == offline[probe] == replay_verdicts[probe]
                ):
                    mismatches.append(
                        f"{label}/{probe}: offline={offline[probe]} "
                        f"streaming={streaming[probe]} replay={replay_verdicts[probe]}"
                    )
        if directory is not None:
            write_snapshot(
                monitor.registry.snapshot(),
                jsonl_path=directory / f"metrics-{slug}.jsonl",
                prometheus_path=directory / f"metrics-{slug}.prom",
            )
    print(
        format_table(
            ["configuration", "events", *PROBES, "matches offline"],
            rows,
            caption="streaming leakage monitor vs offline analysis.leakage",
        )
    )
    if directory is not None:
        print(f"event logs and metric snapshots written to {directory}/")
    if mismatches:
        print()
        for mismatch in mismatches:
            print(f"MISMATCH: {mismatch}", file=sys.stderr)
        return 1
    print("streaming verdicts agree with the offline matrix "
          "(live and replayed) for every configuration")
    return 0


def _audit(argv: list[str]) -> int:
    live = False
    config_slugs: list[str] | None = None
    log_dir: str | None = None
    log_path: str | None = None
    metrics_jsonl: str | None = None
    metrics_prom: str | None = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--live":
            live = True
        elif arg == "--configs" or arg.startswith("--configs="):
            value = _flag_value(arg, args, "--configs")
            config_slugs = [s for s in value.split(",") if s]
        elif arg == "--log-dir" or arg.startswith("--log-dir="):
            log_dir = _flag_value(arg, args, "--log-dir")
        elif arg == "--metrics-jsonl" or arg.startswith("--metrics-jsonl="):
            metrics_jsonl = _flag_value(arg, args, "--metrics-jsonl")
        elif arg == "--metrics-prom" or arg.startswith("--metrics-prom="):
            metrics_prom = _flag_value(arg, args, "--metrics-prom")
        elif arg.startswith("--"):
            raise UsageError(f"unknown audit argument {arg!r}")
        elif log_path is None:
            log_path = arg
        else:
            raise UsageError("audit takes at most one log path")

    if live:
        if log_path is not None:
            raise UsageError("--live runs a workload; it does not take a log path")
        return _audit_live(config_slugs, log_dir)
    if log_path is None:
        raise UsageError("audit requires a log path (or --live)")
    if config_slugs is not None or log_dir is not None:
        raise UsageError("--configs/--log-dir only apply to audit --live")
    return _audit_replay(log_path, metrics_jsonl, metrics_prom)


def _resolve_explain_configs(config_slugs: list[str] | None) -> list:
    from repro.observability.leakmon import CONFIG_SLUGS
    from repro.robustness.campaign import default_campaign_configs

    by_label = dict(default_campaign_configs())
    if config_slugs is None:
        config_slugs = list(CONFIG_SLUGS)
    unknown = [slug for slug in config_slugs if slug not in CONFIG_SLUGS]
    if unknown:
        raise UsageError(
            f"unknown configuration slug(s) {', '.join(sorted(unknown))}; "
            f"available: {', '.join(CONFIG_SLUGS)}"
        )
    if not config_slugs:
        raise UsageError(
            f"no configurations selected; available: {', '.join(CONFIG_SLUGS)}"
        )
    return [(CONFIG_SLUGS[slug], by_label[CONFIG_SLUGS[slug]]) for slug in config_slugs]


def _trace(argv: list[str]) -> int:
    from repro.bench.explain import (
        EXPLAIN_SCENARIOS,
        explain_metadata,
        trace_scenario,
    )
    from repro.observability.traceexport import write_chrome_trace

    scenario = "point_query"
    out: str | None = None
    config_slugs: list[str] | None = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--scenario" or arg.startswith("--scenario="):
            scenario = _flag_value(arg, args, "--scenario")
        elif arg == "--configs" or arg.startswith("--configs="):
            value = _flag_value(arg, args, "--configs")
            config_slugs = [s for s in value.split(",") if s]
        elif arg == "--out" or arg.startswith("--out="):
            out = _flag_value(arg, args, "--out")
        else:
            raise UsageError(f"unknown trace argument {arg!r}")
    if out is None:
        raise UsageError("trace requires --out PATH")
    if scenario not in EXPLAIN_SCENARIOS:
        raise UsageError(
            f"unknown trace scenario {scenario!r}; "
            f"available: {', '.join(EXPLAIN_SCENARIOS)}"
        )
    configs = _resolve_explain_configs(config_slugs)

    spans = []
    for label, config in configs:
        result = trace_scenario(scenario, label, config)
        if result.skipped is not None:
            print(f"skipped {label}: {result.skipped}")
            continue
        spans.extend(result.spans)
    metadata = explain_metadata(scenario, [label for label, _ in configs])
    path = write_chrome_trace(out, spans, metadata)
    print(
        f"{len(spans)} spans from scenario {scenario!r} written to {path} "
        "(open in Perfetto or chrome://tracing)"
    )
    return 0


def _explain(argv: list[str]) -> int:
    from repro.bench.explain import (
        EXPLAIN_SCENARIOS,
        render_explain_report,
        trace_scenario,
    )

    scenario: str | None = None
    config_slugs: list[str] | None = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--configs" or arg.startswith("--configs="):
            value = _flag_value(arg, args, "--configs")
            config_slugs = [s for s in value.split(",") if s]
        elif arg.startswith("--"):
            raise UsageError(f"unknown explain argument {arg!r}")
        elif scenario is None:
            scenario = arg
        else:
            raise UsageError("explain takes exactly one scenario")
    if scenario is None:
        raise UsageError(
            f"explain requires a scenario; available: {', '.join(EXPLAIN_SCENARIOS)}"
        )
    if scenario not in EXPLAIN_SCENARIOS:
        raise UsageError(
            f"unknown explain scenario {scenario!r}; "
            f"available: {', '.join(EXPLAIN_SCENARIOS)}"
        )
    configs = _resolve_explain_configs(config_slugs)

    results = [trace_scenario(scenario, label, config) for label, config in configs]
    print(render_explain_report(results), end="")
    mismatches = []
    for result in results:
        for profile in result.profiles:
            check = profile.formula_check()
            if check["applicable"] and not check["ok"]:
                mismatches.append(
                    f"{result.config}/{profile.name} (trace {profile.trace_id}): "
                    f"measured {check['measured_cipher_calls']} != "
                    f"predicted {check['predicted_cipher_calls']}"
                )
    if mismatches:
        print()
        for mismatch in mismatches:
            print(f"DIVERGENCE: {mismatch}", file=sys.stderr)
        return 1
    return 0


def _monitor(argv: list[str]) -> int:
    from repro.bench import load_report
    from repro.observability.export import (
        render_prometheus_samples,
        render_series_jsonl,
        series_dropped_samples,
    )
    from repro.observability.health import load_rules
    from repro.observability.monitor import (
        INJECTIONS,
        monitor_scenarios,
        run_monitor,
        validate_health_report,
        write_health,
    )

    scenario = "shard_rotation"
    config_slugs: list[str] | None = ["aead-eax"]
    quick = False
    follow = False
    out: str | None = None
    baseline_path: str | None = None
    rules_path: str | None = None
    prom_path: str | None = None
    jsonl_path: str | None = None
    inject: list[str] = []
    limit: int | None = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--scenario" or arg.startswith("--scenario="):
            scenario = _flag_value(arg, args, "--scenario")
        elif arg == "--configs" or arg.startswith("--configs="):
            value = _flag_value(arg, args, "--configs")
            config_slugs = [s for s in value.split(",") if s]
        elif arg == "--quick":
            quick = True
        elif arg == "--follow":
            follow = True
        elif arg == "--out" or arg.startswith("--out="):
            out = _flag_value(arg, args, "--out")
        elif arg == "--baseline" or arg.startswith("--baseline="):
            baseline_path = _flag_value(arg, args, "--baseline")
        elif arg == "--rules" or arg.startswith("--rules="):
            rules_path = _flag_value(arg, args, "--rules")
        elif arg == "--prom" or arg.startswith("--prom="):
            prom_path = _flag_value(arg, args, "--prom")
        elif arg == "--jsonl" or arg.startswith("--jsonl="):
            jsonl_path = _flag_value(arg, args, "--jsonl")
        elif arg == "--inject" or arg.startswith("--inject="):
            fault = _flag_value(arg, args, "--inject")
            if fault not in INJECTIONS:
                raise UsageError(
                    f"unknown injection {fault!r}; "
                    f"available: {', '.join(INJECTIONS)}"
                )
            inject.append(fault)
        elif arg == "--limit" or arg.startswith("--limit="):
            limit = _parse_int(_flag_value(arg, args, "--limit"), "--limit")
        else:
            raise UsageError(f"unknown monitor argument {arg!r}")
    if scenario not in monitor_scenarios():
        raise UsageError(
            f"unknown scenario {scenario!r}; "
            f"available: {', '.join(monitor_scenarios())}"
        )
    configs = _resolve_explain_configs(config_slugs)

    baseline = None
    if baseline_path is not None:
        try:
            baseline = load_report(baseline_path)
        except ValueError as exc:
            raise UsageError(str(exc)) from None
    extra_rules = None
    if rules_path is not None:
        import json as _json

        try:
            specs = _json.loads(Path(rules_path).read_text())
            if not isinstance(specs, list):
                raise ValueError("a rules file holds a JSON array of rule objects")
            extra_rules = load_rules(specs)
        except (OSError, ValueError) as exc:
            raise UsageError(f"cannot load rules from {rules_path}: {exc}") from None

    def dashboard(tick, hub):
        # Pull-sampled series land on this tick; pushed gauges landed
        # between the previous tick and this one — show both.
        fresh = [
            (series.name, series.labels, sample[1])
            for series in hub.all_series(include_volatile=True)
            for sample in [series.last()]
            if sample is not None and sample[0] + 1 >= tick
        ]
        print(f"tick {tick:>5}  ({len(fresh)} series updated)")
        for name, labels, value in fresh:
            rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            print(f"    {name}{{{rendered}}} = {value:g}")

    doc = run_monitor(
        scenario=scenario,
        config_items=configs,
        quick=quick,
        baseline=baseline,
        extra_rules=extra_rules,
        inject=inject,
        limit=limit,
        follow=dashboard if follow else None,
    )
    problems = validate_health_report(doc)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1

    if out is not None:
        path = write_health(doc, out)
        print(f"health report written to {path}")
    if prom_path is not None:
        samples = [
            (entry["name"], entry["labels"], entry["samples"][-1][1])
            for entry in doc["series"]
            if entry["samples"]
        ]
        text = render_prometheus_samples(samples)
        # Ring-drop counters ride along so a scrape can alert on any
        # evicted sample, mirroring the bench harness's hard failure.
        text += render_prometheus_samples(
            series_dropped_samples(doc["series"]), type_hint="counter"
        )
        Path(prom_path).write_text(text)
        print(f"prometheus samples written to {prom_path}")
    if jsonl_path is not None:
        Path(jsonl_path).write_text(render_series_jsonl(doc["series"]))
        print(f"series JSONL written to {jsonl_path}")

    for entry in doc["configs"]:
        if entry.get("skipped"):
            print(f"skipped {entry['config']}: {entry['skipped']}")
            continue
        print(
            f"{entry['config']}: ops={entry['ops']} "
            f"sect4_drift={entry['sect4_drift']} "
            f"leak_events={entry['leak_events']}"
        )
    print(
        f"monitored {scenario}: {doc['ticks']} tick(s), "
        f"{len(doc['series'])} series, {len(doc['rules'])} rule(s)"
    )
    if doc["alerts"]:
        print()
        for alert in doc["alerts"]:
            print(
                f"ALERT [{alert['severity']}] {alert['rule']}: {alert['message']}",
                file=sys.stderr,
            )
        return 1
    print("health: OK (no alerts fired)")
    return 0


def _forensics(argv: list[str]) -> int:
    from repro.observability.flightrecorder import GATED_CLASSES
    from repro.observability.forensics import (
        build_timeline,
        load_and_grade,
        render_scorecard,
        render_timeline,
        run_chaos_flight,
        run_healthy_flight,
        scorecard_gate,
    )
    from repro.observability.monitor import INJECTIONS

    chaos = False
    healthy = False
    flight_path: str | None = None
    show_timeline = False
    steps = 24
    seed = 0
    shards = 2
    replicas = 3
    flaky = True
    config_slugs: list[str] | None = None
    scenario = "point_query"
    inject: list[str] = []
    limit: int | None = None
    out: str | None = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--chaos":
            chaos = True
        elif arg == "--healthy":
            healthy = True
        elif arg == "--scorecard":
            pass  # the scorecard is always printed; kept for symmetry
        elif arg == "--timeline":
            show_timeline = True
        elif arg == "--steps" or arg.startswith("--steps="):
            steps = _parse_int(_flag_value(arg, args, "--steps"), "--steps")
        elif arg == "--seed" or arg.startswith("--seed="):
            seed = _parse_int(_flag_value(arg, args, "--seed"), "--seed")
        elif arg == "--shards" or arg.startswith("--shards="):
            shards = _parse_int(_flag_value(arg, args, "--shards"), "--shards")
        elif arg == "--replicas" or arg.startswith("--replicas="):
            replicas = _parse_int(
                _flag_value(arg, args, "--replicas"), "--replicas"
            )
        elif arg == "--no-flaky":
            flaky = False
        elif arg == "--configs" or arg.startswith("--configs="):
            value = _flag_value(arg, args, "--configs")
            config_slugs = [s for s in value.split(",") if s]
        elif arg == "--scenario" or arg.startswith("--scenario="):
            scenario = _flag_value(arg, args, "--scenario")
        elif arg == "--inject" or arg.startswith("--inject="):
            fault = _flag_value(arg, args, "--inject")
            if fault not in INJECTIONS:
                raise UsageError(
                    f"unknown injection {fault!r}; "
                    f"available: {', '.join(INJECTIONS)}"
                )
            inject.append(fault)
        elif arg == "--limit" or arg.startswith("--limit="):
            limit = _parse_int(_flag_value(arg, args, "--limit"), "--limit")
        elif arg == "--out" or arg.startswith("--out="):
            out = _flag_value(arg, args, "--out")
        elif arg.startswith("--"):
            raise UsageError(f"unknown forensics argument {arg!r}")
        elif flight_path is None:
            flight_path = arg
        else:
            raise UsageError("forensics takes at most one FLIGHT.json path")

    modes = sum([chaos, healthy, flight_path is not None])
    if modes != 1:
        raise UsageError(
            "forensics requires exactly one of: a FLIGHT.json path, "
            "--chaos, or --healthy"
        )
    if steps < 1:
        raise UsageError("--steps must be at least 1")
    if shards < 1:
        raise UsageError("--shards must be at least 1")
    if replicas < 2:
        raise UsageError("--replicas must be at least 2")

    if healthy:
        from repro.observability.monitor import monitor_scenarios

        if scenario not in monitor_scenarios():
            raise UsageError(
                f"unknown scenario {scenario!r}; "
                f"available: {', '.join(monitor_scenarios())}"
            )
        health, doc, incidents = run_healthy_flight(
            scenario=scenario,
            inject=tuple(inject),
            limit=limit,
            out=out,
        )
        print(
            f"healthy run: {scenario} over {health['ticks']} tick(s), "
            f"{len(doc['records'])} flight record(s)"
        )
        if out is not None:
            print(f"flight document written to {out}")
        if show_timeline:
            print(render_timeline(build_timeline(doc)))
        if incidents:
            print()
            for incident in incidents:
                print(f"INCIDENT: {incident}", file=sys.stderr)
            return 1
        print("no incidents: zero alerts, zero typed errors, "
              "zero false positives")
        return 0

    if chaos:
        configs = None
        if config_slugs is not None:
            from repro.observability.leakmon import CONFIG_SLUGS
            from repro.robustness.campaign import default_campaign_configs

            unknown = [s for s in config_slugs if s not in CONFIG_SLUGS]
            if unknown or not config_slugs:
                raise UsageError(
                    f"unknown or empty configuration slug(s); "
                    f"available: {', '.join(CONFIG_SLUGS)}"
                )
            by_label = dict(default_campaign_configs())
            configs = [
                (CONFIG_SLUGS[s], by_label[CONFIG_SLUGS[s]])
                for s in config_slugs
            ]
        campaign, doc, scorecard = run_chaos_flight(
            steps=steps,
            seed=seed,
            configs=configs,
            shard_count=shards,
            replicas=replicas,
            flaky=flaky,
            out=out,
        )
        print(render_scorecard(scorecard))
        if out is not None:
            print(f"flight document written to {out}")
        if show_timeline:
            print(render_timeline(build_timeline(doc)))
        problems = []
        if not campaign.ok:
            problems.extend(campaign.violations)
        problems.extend(scorecard_gate(scorecard, require=GATED_CLASSES))
        if problems:
            print()
            for problem in problems:
                print(f"GATE FAILED: {problem}", file=sys.stderr)
            return 1
        print(
            "detection gate: every gated class (tamper, rollback, "
            "unrepairable) detected 100%, zero false positives"
        )
        return 0

    try:
        doc, scorecard = load_and_grade(flight_path)
    except ValueError as exc:
        raise UsageError(str(exc)) from None
    print(f"graded {flight_path}: {len(doc['records'])} record(s), "
          f"reason {doc['reason']!r}")
    print(render_scorecard(scorecard))
    if show_timeline:
        print(render_timeline(build_timeline(doc)))
    problems = scorecard_gate(scorecard)
    if problems:
        print()
        for problem in problems:
            print(f"GATE FAILED: {problem}", file=sys.stderr)
        return 1
    print("scorecard gate: OK")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(__doc__)
        return 2
    command, *rest = argv
    try:
        if command == "demo":
            return _demo(rest)
        if command == "attacks":
            return _attacks(rest)
        if command == "overhead":
            return _overhead(rest)
        if command == "collisions":
            return _collisions(rest)
        if command == "faultcampaign":
            return _faultcampaign(rest)
        if command == "crashcampaign":
            return _crashcampaign(rest)
        if command == "chaoscampaign":
            return _chaoscampaign(rest)
        if command == "scrub":
            return _scrub(rest)
        if command == "rotate":
            return _rotate(rest)
        if command == "bench":
            return _bench(rest)
        if command == "backendparity":
            return _backendparity(rest)
        if command == "audit":
            return _audit(rest)
        if command == "trace":
            return _trace(rest)
        if command == "explain":
            return _explain(rest)
        if command == "monitor":
            return _monitor(rest)
        if command == "forensics":
            return _forensics(rest)
    except UsageError as exc:
        print(f"error: {exc}\n", file=sys.stderr)
        print(__doc__)
        return 2
    print(f"unknown command {command!r}\n", file=sys.stderr)
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
