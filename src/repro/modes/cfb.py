"""Cipher feedback mode (full-block CFB, NIST SP 800-38A).

Provided for completeness of the modes catalogue the paper references
via [2] (NIST SP 800-38A); CFB under a deterministic IV leaks equal
plaintext prefixes block-for-block, just like CBC.
"""

from __future__ import annotations

from repro.modes.base import CipherMode, IVPolicy, ZeroIV
from repro.primitives.blockcipher import BlockCipher
from repro.primitives.padding import STREAM, PaddingScheme
from repro.primitives.util import iter_blocks, xor_bytes


class CFB(CipherMode):
    """Full-block CFB mode; stream-like, so no padding needed by default."""

    name = "cfb"

    def __init__(
        self,
        cipher: BlockCipher,
        iv_policy: IVPolicy | None = None,
        padding: PaddingScheme = STREAM,
        embed_iv: bool | None = None,
    ) -> None:
        if iv_policy is None:
            iv_policy = ZeroIV()
        super().__init__(cipher, iv_policy, padding, embed_iv)

    def encrypt_blocks(self, padded_plaintext: bytes, iv: bytes) -> bytes:
        feedback = iv
        out = bytearray()
        for block in iter_blocks(padded_plaintext, self.block_size):
            mask = self._cipher.encrypt_block(feedback)
            cipher_block = xor_bytes(block, mask[:len(block)])
            out += cipher_block
            feedback = cipher_block if len(cipher_block) == self.block_size else feedback
        return bytes(out)

    def decrypt_blocks(self, ciphertext: bytes, iv: bytes) -> bytes:
        feedback = iv
        out = bytearray()
        for block in iter_blocks(ciphertext, self.block_size):
            mask = self._cipher.encrypt_block(feedback)
            out += xor_bytes(block, mask[:len(block)])
            feedback = block if len(block) == self.block_size else feedback
        return bytes(out)

    def _check_aligned(self, data: bytes) -> None:
        return
