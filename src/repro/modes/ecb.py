"""Electronic codebook mode.

The paper notes (Sect. 3) that "a purely deterministic mode like ECB
which does not need an IV would be even worse" than zero-IV CBC: equal
*blocks* leak, not just equal prefixes.  Included so the distinguisher
benches can quantify exactly how much worse.
"""

from __future__ import annotations

from repro.modes.base import CipherMode, ZeroIV
from repro.primitives.blockcipher import BlockCipher
from repro.primitives.padding import PKCS7, PaddingScheme
from repro.primitives.util import iter_blocks


class ECB(CipherMode):
    """ECB: every block encrypted independently; inherently deterministic."""

    name = "ecb"

    def __init__(
        self, cipher: BlockCipher, padding: PaddingScheme = PKCS7
    ) -> None:
        super().__init__(cipher, iv_policy=ZeroIV(), padding=padding, embed_iv=False)

    def encrypt_blocks(self, padded_plaintext: bytes, iv: bytes) -> bytes:
        self._check_aligned(padded_plaintext)
        out = bytearray()
        for block in iter_blocks(padded_plaintext, self.block_size):
            out += self._cipher.encrypt_block(block)
        return bytes(out)

    def decrypt_blocks(self, ciphertext: bytes, iv: bytes) -> bytes:
        self._check_aligned(ciphertext)
        out = bytearray()
        for block in iter_blocks(ciphertext, self.block_size):
            out += self._cipher.decrypt_block(block)
        return bytes(out)
