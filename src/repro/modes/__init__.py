"""Block-cipher modes of operation with pluggable IV policies.

The default policy everywhere is :class:`ZeroIV`, because that is the
instantiation of the deterministic encryption function E the paper
builds its counter-examples from (Sect. 3).  Pass
:class:`RandomIV` for the conventional randomised variants used in the
ablation benchmarks.
"""

from repro.modes.base import (
    CipherMode,
    CounterIV,
    FixedIV,
    IVPolicy,
    RandomIV,
    ZeroIV,
)
from repro.modes.cbc import CBC
from repro.modes.cfb import CFB
from repro.modes.ctr import CTR
from repro.modes.ecb import ECB
from repro.modes.ofb import OFB

__all__ = [
    "CBC",
    "CFB",
    "CTR",
    "CipherMode",
    "CounterIV",
    "ECB",
    "FixedIV",
    "IVPolicy",
    "OFB",
    "RandomIV",
    "ZeroIV",
]
