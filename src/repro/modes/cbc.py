"""Cipher block chaining mode (NIST SP 800-38A).

This is the mode Kühn chooses to instantiate E for all counter-examples
(Sect. 3, eqs. 8–9): ``C_1 = ENC_k(P_1 ⊕ IV)``,
``C_i = ENC_k(P_i ⊕ C_{i-1})``.  With the default :class:`ZeroIV` policy
this reproduces the paper's deterministic E exactly, including the two
properties every attack relies on:

* equal plaintext prefixes produce equal ciphertext prefixes, and
* decryption error propagation is local — changing ``C_i`` garbles only
  plaintext blocks ``i`` and ``i+1`` (the paper's footnote 4).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.modes.base import CipherMode
from repro.primitives.util import iter_blocks, xor_bytes_strict


class CBC(CipherMode):
    """CBC mode with a pluggable IV policy (zero IV by default, as in §3)."""

    name = "cbc"

    # Batched variants.  Encryption is chained *within* a message but
    # independent *across* messages, so the batch walks block index k of
    # every still-active message in one wave per k — same bytes, same
    # invocation count, one amortized cipher call per wave.  Decryption
    # has no chain dependency at all and goes through in a single call.

    def _encrypt_aligned_many(
        self, padded_plaintexts: Sequence[bytes], ivs: Sequence[bytes]
    ) -> list[bytes]:
        block = self.block_size
        for padded in padded_plaintexts:
            self._check_aligned(padded)
        previous = list(ivs)
        outs = [bytearray() for _ in padded_plaintexts]
        counts = [len(padded) // block for padded in padded_plaintexts]
        for k in range(max(counts, default=0)):
            active = [i for i, count in enumerate(counts) if k < count]
            wave = [
                xor_bytes_strict(
                    padded_plaintexts[i][k * block : (k + 1) * block], previous[i]
                )
                for i in active
            ]
            for i, encrypted in zip(active, self._cipher.encrypt_blocks(wave)):
                previous[i] = encrypted
                outs[i] += encrypted
        return [bytes(out) for out in outs]

    def _decrypt_aligned_many(
        self, ciphertexts: Sequence[bytes], ivs: Sequence[bytes]
    ) -> list[bytes]:
        block = self.block_size
        flat: list[bytes] = []
        for ciphertext in ciphertexts:
            self._check_aligned(ciphertext)
            flat.extend(iter_blocks(ciphertext, block))
        decrypted = self._cipher.decrypt_blocks(flat)
        outs: list[bytes] = []
        cursor = 0
        for ciphertext, iv in zip(ciphertexts, ivs):
            out = bytearray()
            previous = iv
            for offset in range(0, len(ciphertext), block):
                out += xor_bytes_strict(decrypted[cursor], previous)
                previous = ciphertext[offset : offset + block]
                cursor += 1
            outs.append(bytes(out))
        return outs

    def encrypt_blocks(self, padded_plaintext: bytes, iv: bytes) -> bytes:
        self._check_aligned(padded_plaintext)
        previous = iv
        out = bytearray()
        for block in iter_blocks(padded_plaintext, self.block_size):
            previous = self._cipher.encrypt_block(xor_bytes_strict(block, previous))
            out += previous
        return bytes(out)

    def decrypt_blocks(self, ciphertext: bytes, iv: bytes) -> bytes:
        self._check_aligned(ciphertext)
        previous = iv
        out = bytearray()
        for block in iter_blocks(ciphertext, self.block_size):
            out += xor_bytes_strict(self._cipher.decrypt_block(block), previous)
            previous = block
        return bytes(out)
