"""Cipher block chaining mode (NIST SP 800-38A).

This is the mode Kühn chooses to instantiate E for all counter-examples
(Sect. 3, eqs. 8–9): ``C_1 = ENC_k(P_1 ⊕ IV)``,
``C_i = ENC_k(P_i ⊕ C_{i-1})``.  With the default :class:`ZeroIV` policy
this reproduces the paper's deterministic E exactly, including the two
properties every attack relies on:

* equal plaintext prefixes produce equal ciphertext prefixes, and
* decryption error propagation is local — changing ``C_i`` garbles only
  plaintext blocks ``i`` and ``i+1`` (the paper's footnote 4).
"""

from __future__ import annotations

from repro.modes.base import CipherMode
from repro.primitives.util import iter_blocks, xor_bytes_strict


class CBC(CipherMode):
    """CBC mode with a pluggable IV policy (zero IV by default, as in §3)."""

    name = "cbc"

    def encrypt_blocks(self, padded_plaintext: bytes, iv: bytes) -> bytes:
        self._check_aligned(padded_plaintext)
        previous = iv
        out = bytearray()
        for block in iter_blocks(padded_plaintext, self.block_size):
            previous = self._cipher.encrypt_block(xor_bytes_strict(block, previous))
            out += previous
        return bytes(out)

    def decrypt_blocks(self, ciphertext: bytes, iv: bytes) -> bytes:
        self._check_aligned(ciphertext)
        previous = iv
        out = bytearray()
        for block in iter_blocks(ciphertext, self.block_size):
            out += xor_bytes_strict(self._cipher.decrypt_block(block), previous)
            previous = block
        return bytes(out)
