"""Mode-of-operation interfaces and IV policies.

The paper's attacks hinge on *how the IV is chosen*: [3] explicitly
assumes E is deterministic (eq. 3), and Kühn instantiates this with CBC
under a constant all-zero IV (Sect. 3, eqs. 8–9).  We therefore make the
IV policy a first-class, swappable object so that the same CBC code can
be run as the paper's insecure counter-example (``ZeroIV``) or in the
conventional randomised form (``RandomIV``) for the ablation benches.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.errors import BlockSizeError, NonceError
from repro.observability.metrics import REGISTRY as _METRICS
from repro.observability.trace import TRACER as _TRACER
from repro.primitives.blockcipher import BlockCipher
from repro.primitives.padding import PKCS7, PaddingScheme
from repro.primitives.rng import RandomSource


class IVPolicy(ABC):
    """Strategy producing the initialisation vector for each message."""

    #: True when every message gets the same IV, making the mode a
    #: deterministic function of the plaintext — the property eq. (3)
    #: demands and Sect. 3 exploits.
    deterministic: bool

    @abstractmethod
    def generate(self, block_size: int) -> bytes:
        """Return the IV to use for the next message."""


class ZeroIV(IVPolicy):
    """The paper's counter-example policy: IV = (0, ..., 0) always."""

    deterministic = True

    def generate(self, block_size: int) -> bytes:
        return bytes(block_size)


class FixedIV(IVPolicy):
    """A constant (possibly secret) IV — equally deterministic."""

    deterministic = True

    def __init__(self, iv: bytes) -> None:
        self._iv = bytes(iv)

    def generate(self, block_size: int) -> bytes:
        if len(self._iv) != block_size:
            raise NonceError(
                f"fixed IV has {len(self._iv)} bytes, cipher block is {block_size}"
            )
        return self._iv


class RandomIV(IVPolicy):
    """Fresh random IV per message (the conventional secure choice)."""

    deterministic = False

    def __init__(self, rng: RandomSource) -> None:
        self._rng = rng

    def generate(self, block_size: int) -> bytes:
        return self._rng.bytes(block_size)


class CounterIV(IVPolicy):
    """Unique-but-predictable IVs from a counter.

    Non-repeating (so pattern matching across messages fails) but
    predictable, which is known to be insufficient against adaptive
    chosen-plaintext attacks on CBC; included for ablations.
    """

    deterministic = False

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def generate(self, block_size: int) -> bytes:
        value = self._next
        self._next += 1
        return value.to_bytes(block_size, "big")


class CipherMode(ABC):
    """A complete encryption transform built over a block cipher.

    This is the object the paper calls ``E_k(.)``: it accepts messages of
    any length, applies padding, runs the block cipher in some chaining
    mode, and (when the IV policy is non-deterministic) transports the IV
    by prefixing it to the ciphertext.
    """

    name: str

    def __init__(
        self,
        cipher: BlockCipher,
        iv_policy: IVPolicy | None = None,
        padding: PaddingScheme = PKCS7,
        embed_iv: bool | None = None,
    ) -> None:
        self._cipher = cipher
        self._iv_policy = iv_policy if iv_policy is not None else ZeroIV()
        self._padding = padding
        # Deterministic IVs are implicit (both sides know them); random or
        # counter IVs must travel with the ciphertext unless told otherwise.
        if embed_iv is None:
            embed_iv = not self._iv_policy.deterministic
        self._embed_iv = embed_iv

    @property
    def block_size(self) -> int:
        return self._cipher.block_size

    @property
    def cipher(self) -> BlockCipher:
        return self._cipher

    @property
    def deterministic(self) -> bool:
        """True when equal plaintexts always give equal ciphertexts."""
        return self._iv_policy.deterministic

    # -- message-level API --------------------------------------------------

    def encrypt(self, plaintext: bytes) -> bytes:
        """Pad and encrypt an arbitrary-length message."""
        if _METRICS.enabled:
            _METRICS.counter(f"mode.{self.name}.encrypts").inc()
            _METRICS.histogram(f"mode.{self.name}.plaintext_bytes").observe(
                len(plaintext)
            )
        iv = self._iv_policy.generate(self.block_size)
        padded = self._padding.pad(plaintext, self.block_size)
        if _TRACER.enabled:
            # Every mode here costs one blockcipher call per padded block.
            _TRACER.add_cost("cipher_calls_predicted", len(padded) // self.block_size)
        body = self.encrypt_blocks(padded, iv)
        return (iv + body) if self._embed_iv else body

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt and unpad a message produced by :meth:`encrypt`."""
        if _METRICS.enabled:
            _METRICS.counter(f"mode.{self.name}.decrypts").inc()
        if self._embed_iv:
            if len(ciphertext) < self.block_size:
                raise BlockSizeError("ciphertext shorter than embedded IV")
            iv, body = ciphertext[:self.block_size], ciphertext[self.block_size:]
        else:
            iv, body = self._iv_policy.generate(self.block_size), ciphertext
        if _TRACER.enabled:
            _TRACER.add_cost("cipher_calls_predicted", len(body) // self.block_size)
        padded = self.decrypt_blocks(body, iv)
        return self._padding.unpad(padded, self.block_size)

    # -- batched message-level API -------------------------------------------

    def encrypt_many(self, plaintexts: Sequence[bytes]) -> list[bytes]:
        """Encrypt a batch of messages.

        Byte-for-byte equal to ``[self.encrypt(p) for p in plaintexts]``:
        IVs are drawn from the policy in list order, padding and metrics
        are identical, and the predicted blockcipher cost charged to the
        active trace span is the same sum.  Modes override
        :meth:`_encrypt_aligned_many` to batch the underlying cipher calls.
        """
        plaintexts = list(plaintexts)
        if _METRICS.enabled:
            encrypts = _METRICS.counter(f"mode.{self.name}.encrypts")
            sizes = _METRICS.histogram(f"mode.{self.name}.plaintext_bytes")
            for plaintext in plaintexts:
                encrypts.inc()
                sizes.observe(len(plaintext))
        block = self.block_size
        ivs = [self._iv_policy.generate(block) for _ in plaintexts]
        padded = [self._padding.pad(plaintext, block) for plaintext in plaintexts]
        if _TRACER.enabled:
            _TRACER.add_cost(
                "cipher_calls_predicted", sum(len(p) // block for p in padded)
            )
        bodies = self._encrypt_aligned_many(padded, ivs)
        if self._embed_iv:
            return [iv + body for iv, body in zip(ivs, bodies)]
        return bodies

    def decrypt_many(self, ciphertexts: Sequence[bytes]) -> list[bytes]:
        """Decrypt a batch of messages produced by :meth:`encrypt`."""
        ciphertexts = list(ciphertexts)
        if _METRICS.enabled:
            decrypts = _METRICS.counter(f"mode.{self.name}.decrypts")
            for _ in ciphertexts:
                decrypts.inc()
        block = self.block_size
        ivs: list[bytes] = []
        bodies: list[bytes] = []
        for ciphertext in ciphertexts:
            if self._embed_iv:
                if len(ciphertext) < block:
                    raise BlockSizeError("ciphertext shorter than embedded IV")
                ivs.append(ciphertext[:block])
                bodies.append(ciphertext[block:])
            else:
                ivs.append(self._iv_policy.generate(block))
                bodies.append(ciphertext)
        if _TRACER.enabled:
            _TRACER.add_cost(
                "cipher_calls_predicted", sum(len(b) // block for b in bodies)
            )
        padded = self._decrypt_aligned_many(bodies, ivs)
        return [self._padding.unpad(p, block) for p in padded]

    def _encrypt_aligned_many(
        self, padded_plaintexts: Sequence[bytes], ivs: Sequence[bytes]
    ) -> list[bytes]:
        """Batch hook behind :meth:`encrypt_many`; defaults to a loop."""
        return [
            self.encrypt_blocks(padded, iv)
            for padded, iv in zip(padded_plaintexts, ivs)
        ]

    def _decrypt_aligned_many(
        self, ciphertexts: Sequence[bytes], ivs: Sequence[bytes]
    ) -> list[bytes]:
        """Batch hook behind :meth:`decrypt_many`; defaults to a loop."""
        return [
            self.decrypt_blocks(ciphertext, iv)
            for ciphertext, iv in zip(ciphertexts, ivs)
        ]

    # -- block-level API (used by the attack code) ----------------------------

    @abstractmethod
    def encrypt_blocks(self, padded_plaintext: bytes, iv: bytes) -> bytes:
        """Encrypt block-aligned data under an explicit IV."""

    @abstractmethod
    def decrypt_blocks(self, ciphertext: bytes, iv: bytes) -> bytes:
        """Decrypt block-aligned data under an explicit IV."""

    def _check_aligned(self, data: bytes) -> None:
        if len(data) % self.block_size:
            raise BlockSizeError(
                f"{self.name} needs block-aligned data, got {len(data)} bytes"
            )
