"""Counter mode (NIST SP 800-38A).

Footnote 2 of the paper: "Stream ciphers and streaming modes for
blockciphers like OFB or counter mode would be insecure due to the reuse
of the same key-stream resulting from the assumed determinism (3)."
We implement CTR so benchmark X2 can demonstrate that break concretely:
under a deterministic (zero) IV, ``C ⊕ C' = P ⊕ P'``.
"""

from __future__ import annotations

from repro.modes.base import CipherMode, IVPolicy, ZeroIV
from repro.primitives.blockcipher import BlockCipher
from repro.primitives.padding import STREAM, PaddingScheme
from repro.primitives.util import bytes_to_int, int_to_bytes, xor_bytes_strict


class CTR(CipherMode):
    """CTR mode; a stream mode, so no padding is required by default."""

    name = "ctr"

    def __init__(
        self,
        cipher: BlockCipher,
        iv_policy: IVPolicy | None = None,
        padding: PaddingScheme = STREAM,
        embed_iv: bool | None = None,
    ) -> None:
        if iv_policy is None:
            iv_policy = ZeroIV()
        super().__init__(cipher, iv_policy, padding, embed_iv)

    def keystream(self, iv: bytes, length: int) -> bytes:
        """The raw keystream for a given counter start — exposed so the
        footnote-2 attack can show two messages consumed the same one."""
        out = bytearray()
        counter = bytes_to_int(iv)
        modulus = 256 ** self.block_size
        while len(out) < length:
            out += self._cipher.encrypt_block(
                int_to_bytes(counter % modulus, self.block_size)
            )
            counter += 1
        return bytes(out[:length])

    def encrypt_blocks(self, padded_plaintext: bytes, iv: bytes) -> bytes:
        stream = self.keystream(iv, len(padded_plaintext))
        return xor_bytes_strict(padded_plaintext, stream)

    def decrypt_blocks(self, ciphertext: bytes, iv: bytes) -> bytes:
        return self.encrypt_blocks(ciphertext, iv)

    def _check_aligned(self, data: bytes) -> None:
        # Stream mode: any length is acceptable.
        return
