"""Output feedback mode (NIST SP 800-38A).

Like CTR, OFB is called out in the paper's footnote 2 as insecure under
the deterministic-E assumption because the keystream repeats.
"""

from __future__ import annotations

from repro.modes.base import CipherMode, IVPolicy, ZeroIV
from repro.primitives.blockcipher import BlockCipher
from repro.primitives.padding import STREAM, PaddingScheme
from repro.primitives.util import xor_bytes_strict


class OFB(CipherMode):
    """OFB mode; a stream mode, so no padding is required by default."""

    name = "ofb"

    def __init__(
        self,
        cipher: BlockCipher,
        iv_policy: IVPolicy | None = None,
        padding: PaddingScheme = STREAM,
        embed_iv: bool | None = None,
    ) -> None:
        if iv_policy is None:
            iv_policy = ZeroIV()
        super().__init__(cipher, iv_policy, padding, embed_iv)

    def keystream(self, iv: bytes, length: int) -> bytes:
        """Raw OFB keystream, exposed for the footnote-2 demonstration."""
        out = bytearray()
        feedback = iv
        while len(out) < length:
            feedback = self._cipher.encrypt_block(feedback)
            out += feedback
        return bytes(out[:length])

    def encrypt_blocks(self, padded_plaintext: bytes, iv: bytes) -> bytes:
        stream = self.keystream(iv, len(padded_plaintext))
        return xor_bytes_strict(padded_plaintext, stream)

    def decrypt_blocks(self, ciphertext: bytes, iv: bytes) -> bytes:
        return self.encrypt_blocks(ciphertext, iv)

    def _check_aligned(self, data: bytes) -> None:
        return
