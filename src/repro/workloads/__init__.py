"""Workload and dataset generators for benchmarks and examples."""

from repro.workloads.datasets import (
    DEFAULT_MASTER_KEY,
    DOCUMENTS_SCHEMA,
    PATIENTS_SCHEMA,
    build_documents_db,
    build_patients_db,
)
from repro.workloads.generators import (
    ascii_string,
    default_rng,
    diagnosis,
    patient_rows,
    person_name,
    shared_prefix_strings,
    single_block_ascii,
    zipf_integers,
)

__all__ = [
    "DEFAULT_MASTER_KEY",
    "DOCUMENTS_SCHEMA",
    "PATIENTS_SCHEMA",
    "ascii_string",
    "build_documents_db",
    "build_patients_db",
    "default_rng",
    "diagnosis",
    "patient_rows",
    "person_name",
    "shared_prefix_strings",
    "single_block_ascii",
    "zipf_integers",
]
