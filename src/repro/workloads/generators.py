"""Synthetic data generators shaped like the paper's attack settings.

Sect. 3 makes specific assumptions about the data: "attributes comprised
of strings that are possibly much longer than the blocksize of the
cipher" sharing "a common prefix of … two blocks" (pattern matching),
and "an attribute V [of] b characters chosen from the ASCII character
set … represented as a single octet each" (the substitution experiment).
These generators produce exactly those distributions, deterministically
from a seed.
"""

from __future__ import annotations

import string

from repro.primitives.rng import DeterministicRandom, RandomSource

_ASCII_PRINTABLE = (string.ascii_letters + string.digits + " .,-_").encode("ascii")


def ascii_string(rng: RandomSource, length: int) -> str:
    """Uniform printable-ASCII string (every octet in 0..127)."""
    return bytes(rng.choice(_ASCII_PRINTABLE) for _ in range(length)).decode("ascii")


def single_block_ascii(rng: RandomSource, block_size: int = 16) -> str:
    """The Sect. 3.1 substitution-attack value shape: exactly b ASCII chars."""
    return ascii_string(rng, block_size)


def shared_prefix_strings(
    rng: RandomSource,
    count: int,
    prefix_blocks: int = 2,
    total_blocks: int = 4,
    block_size: int = 16,
    groups: int = 1,
) -> list[str]:
    """Strings sharing multi-block prefixes within each group.

    With the defaults this is the paper's pattern-matching setting: pairs
    of values sharing "a common prefix of (for illustration) two blocks".
    ``groups`` distinct prefixes are generated; strings are assigned to
    groups round-robin, so values ``i`` and ``i + groups`` share a prefix.
    """
    if prefix_blocks >= total_blocks:
        raise ValueError("prefix must be shorter than the whole string")
    prefixes = [
        ascii_string(rng, prefix_blocks * block_size) for _ in range(groups)
    ]
    suffix_length = (total_blocks - prefix_blocks) * block_size
    return [
        prefixes[i % groups] + ascii_string(rng, suffix_length)
        for i in range(count)
    ]


def zipf_integers(rng: RandomSource, count: int, universe: int, s: float = 1.2) -> list[int]:
    """Zipf-distributed integers in [0, universe) — skewed point-query keys."""
    weights = [1.0 / (rank ** s) for rank in range(1, universe + 1)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)
    out = []
    for _ in range(count):
        u = rng.randint(10 ** 9) / 10 ** 9
        lo, hi = 0, universe - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        out.append(lo)
    return out


_FIRST_NAMES = (
    "alice bob carol dave erin frank grace heidi ivan judy mallory niaj "
    "olivia peggy quentin rupert sybil trent ursula victor wendy yolanda"
).split()
_SURNAMES = (
    "smith jones taylor brown wilson evans thomas johnson roberts walker "
    "wright thompson white hughes edwards green lewis wood harris martin"
).split()
_DIAGNOSES = (
    "hypertension diabetes-type-2 asthma migraine arthritis anemia "
    "bronchitis gastritis dermatitis sinusitis influenza tonsillitis"
).split()


def person_name(rng: RandomSource) -> str:
    """Plausible full name (the kind of PII [3] motivates protecting)."""
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_SURNAMES)}"


def diagnosis(rng: RandomSource) -> str:
    return rng.choice(_DIAGNOSES)


def patient_rows(rng: RandomSource, count: int) -> list[tuple[int, str, str, int]]:
    """(patient_id, name, diagnosis, age) rows for the medical example."""
    return [
        (
            i,
            person_name(rng),
            diagnosis(rng),
            18 + rng.randint(70),
        )
        for i in range(count)
    ]


def default_rng(seed: str = "repro-workload") -> DeterministicRandom:
    """The seeded RNG every benchmark uses for repeatability."""
    return DeterministicRandom(seed)
