"""Pre-packaged datasets and database builders for examples/benchmarks."""

from __future__ import annotations

from repro.core.encrypted_db import EncryptedDatabase, EncryptionConfig
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.primitives.rng import DeterministicRandom, RandomSource
from repro.workloads.generators import patient_rows, shared_prefix_strings

#: The schema of the running medical example ([3]'s motivating scenario:
#: a database whose contents must stay private even from administrators).
PATIENTS_SCHEMA = TableSchema(
    "patients",
    [
        Column("patient_id", ColumnType.INT),
        Column("name", ColumnType.TEXT),
        Column("diagnosis", ColumnType.TEXT),
        Column("age", ColumnType.INT),
    ],
)

#: A documents table whose values share long common prefixes — the data
#: shape every pattern-matching attack in Sect. 3 assumes.
DOCUMENTS_SCHEMA = TableSchema(
    "documents",
    [
        Column("doc_id", ColumnType.INT),
        Column("body", ColumnType.TEXT),
    ],
)

DEFAULT_MASTER_KEY = b"repro-master-key-0123456789abcdef"


def build_patients_db(
    config: EncryptionConfig,
    rows: int = 200,
    master_key: bytes = DEFAULT_MASTER_KEY,
    rng: RandomSource | None = None,
    with_indexes: bool = True,
) -> EncryptedDatabase:
    """An encrypted patients database under the given configuration."""
    rng = rng if rng is not None else DeterministicRandom("patients")
    db = EncryptedDatabase(master_key, config, rng=rng.fork("db"))
    db.create_table(PATIENTS_SCHEMA)
    for row in patient_rows(rng.fork("rows"), rows):
        db.insert("patients", list(row))
    if with_indexes:
        db.create_index("patients_by_age", "patients", "age", kind="table")
        db.create_index("patients_by_name", "patients", "name", kind="btree")
    return db


def build_documents_db(
    config: EncryptionConfig,
    rows: int = 64,
    prefix_blocks: int = 2,
    total_blocks: int = 4,
    groups: int = 8,
    master_key: bytes = DEFAULT_MASTER_KEY,
    rng: RandomSource | None = None,
    index_kind: str | None = "table",
) -> EncryptedDatabase:
    """A documents database with shared-prefix bodies (attack fodder)."""
    rng = rng if rng is not None else DeterministicRandom("documents")
    db = EncryptedDatabase(master_key, config, rng=rng.fork("db"))
    db.create_table(DOCUMENTS_SCHEMA)
    bodies = shared_prefix_strings(
        rng.fork("bodies"), rows, prefix_blocks, total_blocks, groups=groups
    )
    for doc_id, body in enumerate(bodies):
        db.insert("documents", [doc_id, body])
    if index_kind:
        db.create_index("documents_by_body", "documents", "body", kind=index_kind)
    return db
