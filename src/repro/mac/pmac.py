"""PMAC (Rogaway), the parallelisable MAC used for associated data in the
paper's "OCB ⊕ PMAC" AEAD option (Sect. 4, reference [10]).

Follows the PMAC definition from Rogaway's OCB/PMAC papers: offsets are
Gray-code multiples of L = E_k(0^n) in GF(2^n); a full final block is
masked with L·x^{-1}, a partial one is 10*-padded.
"""

from __future__ import annotations

from repro.mac.base import MAC
from repro.primitives.blockcipher import BlockCipher
from repro.primitives.util import (
    gf_double,
    gf_halve,
    ntz,
    split_blocks,
    xor_bytes_strict,
)


class PMAC(MAC):
    """PMAC over any block cipher, with optional tag truncation."""

    name = "pmac"

    def __init__(self, cipher: BlockCipher, tag_size: int | None = None) -> None:
        self._cipher = cipher
        block = cipher.block_size
        self.tag_size = tag_size if tag_size is not None else block
        if not 1 <= self.tag_size <= block:
            raise ValueError("tag size must be between 1 and the block size")
        self._l_zero = cipher.encrypt_block(bytes(block))
        self._l_inv = gf_halve(self._l_zero)
        # Precompute L(i) = x^i · L for the offset schedule.
        self._l_table = [self._l_zero]

    @property
    def block_size(self) -> int:
        return self._cipher.block_size

    def _l(self, index: int) -> bytes:
        while len(self._l_table) <= index:
            self._l_table.append(gf_double(self._l_table[-1]))
        return self._l_table[index]

    def tag(self, message: bytes) -> bytes:
        block = self.block_size
        blocks = split_blocks(message, block) if message else [b""]
        offset = bytes(block)
        checksum = bytes(block)
        for i, chunk in enumerate(blocks[:-1], start=1):
            offset = xor_bytes_strict(offset, self._l(ntz(i)))
            checksum = xor_bytes_strict(
                checksum, self._cipher.encrypt_block(xor_bytes_strict(chunk, offset))
            )
        last = blocks[-1]
        if len(last) == block:
            checksum = xor_bytes_strict(checksum, xor_bytes_strict(last, self._l_inv))
        else:
            padded = last + b"\x80" + bytes(block - len(last) - 1)
            checksum = xor_bytes_strict(checksum, padded)
        return self._cipher.encrypt_block(checksum)[: self.tag_size]

    def tags_many(self, messages: list[bytes]) -> list[bytes]:
        """Tag a batch of messages; equals ``[self.tag(m) for m in messages]``.

        PMAC's non-final blocks are already parallel within one message;
        this batches them *across* messages too (one cipher call for every
        non-final block in the batch, one for all the final checksums),
        with per-message invocation counts unchanged.
        """
        if not messages:
            return []
        block = self.block_size
        chunked = [split_blocks(m, block) if m else [b""] for m in messages]
        masked: list[bytes] = []
        owners: list[int] = []
        for index, blocks in enumerate(chunked):
            offset = bytes(block)
            for i, chunk in enumerate(blocks[:-1], start=1):
                offset = xor_bytes_strict(offset, self._l(ntz(i)))
                masked.append(xor_bytes_strict(chunk, offset))
                owners.append(index)
        checksums = [bytes(block)] * len(messages)
        for owner, encrypted in zip(owners, self._cipher.encrypt_blocks(masked)):
            checksums[owner] = xor_bytes_strict(checksums[owner], encrypted)
        for index, blocks in enumerate(chunked):
            last = blocks[-1]
            if len(last) == block:
                folded = xor_bytes_strict(last, self._l_inv)
            else:
                folded = last + b"\x80" + bytes(block - len(last) - 1)
            checksums[index] = xor_bytes_strict(checksums[index], folded)
        return [
            tag[: self.tag_size] for tag in self._cipher.encrypt_blocks(checksums)
        ]
