"""Raw CBC-MAC.

"The essential point about CBC-MAC is that it works basically the same
way as CBC mode encryption ..., but the intermediate ciphertexts are not
made public, only the final one is used as authentication tag"
(paper, Sect. 3.3).  That identity of internals is exactly what the
encrypt-and-MAC interaction attack exploits when the same key is used
for CBC encryption and the MAC.

Raw CBC-MAC is only secure for fixed-length messages; OMAC (q.v.) is the
variable-length-secure variant the paper names.  We keep the raw version
because the attack analysis needs access to the chaining values.
"""

from __future__ import annotations

from repro.errors import BlockSizeError
from repro.mac.base import MAC
from repro.primitives.blockcipher import BlockCipher
from repro.primitives.padding import PKCS7, PaddingScheme
from repro.primitives.util import iter_blocks, xor_bytes_strict


class CBCMAC(MAC):
    """Plain CBC-MAC with zero IV over padded input."""

    name = "cbc-mac"

    def __init__(
        self, cipher: BlockCipher, padding: PaddingScheme = PKCS7
    ) -> None:
        self._cipher = cipher
        self._padding = padding
        self.tag_size = cipher.block_size

    @property
    def block_size(self) -> int:
        return self._cipher.block_size

    def chaining_values(self, padded_message: bytes) -> list[bytes]:
        """All intermediate CBC chaining values y_1 .. y_m.

        With a zero IV and the *same key* as a zero-IV CBC encryption,
        these coincide with that encryption's ciphertext blocks — the
        coincidence at the heart of the Sect. 3.3 forgery.
        """
        if len(padded_message) % self.block_size:
            raise BlockSizeError("chaining_values needs block-aligned input")
        state = bytes(self.block_size)
        values = []
        for block in iter_blocks(padded_message, self.block_size):
            state = self._cipher.encrypt_block(xor_bytes_strict(block, state))
            values.append(state)
        return values

    def tag(self, message: bytes) -> bytes:
        padded = self._padding.pad(message, self.block_size)
        values = self.chaining_values(padded)
        return values[-1] if values else self._cipher.encrypt_block(
            bytes(self.block_size)
        )
