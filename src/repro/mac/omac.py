"""OMAC1 / CMAC (Iwata–Kurosawa, paper reference [5]; RFC 4493).

Sect. 3.3 of the paper instantiates the MAC of [12] "with a CBC-MAC
variant like OMAC [5] that itself is secure for variable-length inputs"
and shows the combination with same-key zero-IV CBC encryption still
loses authenticity.  "The details where OMAC deviates from this rough
description are irrelevant for the attack" — but we implement the real
thing (OMAC1 = CMAC), validated against the RFC 4493 vectors.
"""

from __future__ import annotations

from repro.mac.base import MAC
from repro.primitives.blockcipher import BlockCipher
from repro.primitives.util import gf_double, iter_blocks, xor_bytes_strict


class OMAC(MAC):
    """OMAC1 (CMAC): CBC-MAC with derived final-block masks K1/K2."""

    name = "omac1"

    def __init__(self, cipher: BlockCipher, tag_size: int | None = None) -> None:
        self._cipher = cipher
        block = cipher.block_size
        self.tag_size = tag_size if tag_size is not None else block
        if not 1 <= self.tag_size <= block:
            raise ValueError("tag size must be between 1 and the block size")
        l_value = cipher.encrypt_block(bytes(block))
        self._k1 = gf_double(l_value)
        self._k2 = gf_double(self._k1)

    @property
    def block_size(self) -> int:
        return self._cipher.block_size

    def chaining_values(self, message: bytes) -> list[bytes]:
        """Intermediate chaining values *before* the final tweaked block.

        Exposed for the Sect. 3.3 analysis: for a message whose first s
        blocks equal the first s plaintext blocks of a same-key zero-IV
        CBC encryption, these values equal that encryption's ciphertext
        blocks C_1 .. C_s (provided s < number of OMAC blocks, so the
        final-block tweak has not been applied yet).
        """
        block = self.block_size
        full_blocks = max((len(message) - 1) // block, 0)
        state = bytes(block)
        values = []
        for chunk in iter_blocks(message[: full_blocks * block], block):
            state = self._cipher.encrypt_block(xor_bytes_strict(chunk, state))
            values.append(state)
        return values

    def tag(self, message: bytes) -> bytes:
        block = self.block_size
        if message and len(message) % block == 0:
            body, last = message[:-block], message[-block:]
            final = xor_bytes_strict(last, self._k1)
        else:
            remainder = message[(len(message) // block) * block:]
            body = message[: len(message) - len(remainder)]
            padded = remainder + b"\x80" + bytes(block - len(remainder) - 1)
            final = xor_bytes_strict(padded, self._k2)

        state = bytes(block)
        for chunk in iter_blocks(body, block):
            state = self._cipher.encrypt_block(xor_bytes_strict(chunk, state))
        state = self._cipher.encrypt_block(xor_bytes_strict(final, state))
        return state[: self.tag_size]
