"""Message-authentication-code interface.

The scheme of [12] (paper eq. 7) attaches
``MAC_k(V_trc ∥ Ref_I ∥ Ref_T ∥ Ref_S)`` to each index entry.  Sect. 3.3
shows that which MAC is chosen — and whether it shares the encryption
key — decides whether the scheme is secure, so MACs are first-class
objects here.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.primitives.util import constant_time_equal


class MAC(ABC):
    """A deterministic keyed tagging function."""

    name: str
    #: Tag length in bytes.
    tag_size: int

    @abstractmethod
    def tag(self, message: bytes) -> bytes:
        """Compute the authentication tag of ``message``."""

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-time tag check."""
        return constant_time_equal(self.tag(message), tag)
