"""Message authentication codes: raw CBC-MAC, OMAC1/CMAC, PMAC, HMAC."""

from repro.mac.base import MAC
from repro.mac.cbcmac import CBCMAC
from repro.mac.hmac_mac import HMACMAC
from repro.mac.omac import OMAC
from repro.mac.pmac import PMAC

__all__ = ["CBCMAC", "HMACMAC", "MAC", "OMAC", "PMAC"]
