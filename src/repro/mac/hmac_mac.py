"""Adapter presenting HMAC through the :class:`repro.mac.base.MAC` interface.

Lets the [12]-style index scheme be instantiated with a hash-based MAC,
one of the "usual components" a practitioner might reach for.  HMAC with
a key independent of the encryption key defeats the Sect. 3.3
interaction attack — one of the ablation points of DESIGN.md.
"""

from __future__ import annotations

from typing import Type

from repro.mac.base import MAC
from repro.primitives.hmac import HMAC
from repro.primitives.sha256 import SHA256


class HMACMAC(MAC):
    """HMAC-based MAC (default HMAC-SHA256), optionally truncated."""

    def __init__(
        self, key: bytes, hash_cls: Type = SHA256, tag_size: int | None = None
    ) -> None:
        self._key = bytes(key)
        self._hash_cls = hash_cls
        full = hash_cls.digest_size
        self.tag_size = tag_size if tag_size is not None else full
        if not 1 <= self.tag_size <= full:
            raise ValueError("tag size must be between 1 and the digest size")
        self.name = f"hmac-{hash_cls.name}"

    def tag(self, message: bytes) -> bytes:
        return HMAC(self._key, self._hash_cls, message).digest()[: self.tag_size]
