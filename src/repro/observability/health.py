"""Declarative health rules evaluated against the telemetry hub.

Three rule shapes cover the monitoring playbook:

* **threshold** — the latest sample of every matching series compared
  against a limit (``cipher drift > 0``, ``degraded shards > 0``);
* **delta** — growth over a trailing tick window (``replayed records
  grew by more than N in the last W ticks``);
* **slo-burn** — error-budget burn rate: the growth of a cumulative
  series over a window, divided by the budget the window allows; fires
  when the budget burns faster than 1×.

Rules are plain data (see :func:`parse_rule`), so a rule set can live in
a JSON file next to the workload it guards; :func:`default_rules` builds
the built-in set — Sect. 4 measured≠predicted drift, WAL
replay/fallback, shard quarantine/degraded mounts, leakage budgets, and
p99 latency regression against a pinned bench baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.observability.flightrecorder import RECORDER
from repro.observability.timeseries import Series, TelemetryHub

SEVERITY_INFO = "info"
SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"

_OPS = {
    ">": lambda value, limit: value > limit,
    ">=": lambda value, limit: value >= limit,
    "<": lambda value, limit: value < limit,
    "<=": lambda value, limit: value <= limit,
    "==": lambda value, limit: value == limit,
    "!=": lambda value, limit: value != limit,
}

#: Structural-leakage budget per scheme slug: how many structural leak
#: events (equality/prefix/frequency/linkage collisions plus accepted
#: forgeries) a monitored run may record before the ``leak-budget`` rule
#: fires.  The broken schemes leak *by design* — the paper's point — so
#: their budget is unbounded (None); the fixed AEAD schemes and the
#: plaintext baseline (no ciphertext to collide) must stay at zero.
LEAK_BUDGETS: dict[str, int | None] = {
    "plain": 0,
    "xor": None,
    "append": None,
    "dbsec2005": None,
    "aead-eax": 0,
    "aead-ocb": 0,
}


@dataclass(frozen=True)
class Alert:
    """One rule firing against one series."""

    rule: str
    severity: str
    series: str
    labels: dict
    tick: int
    value: float
    message: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "series": self.series,
            "labels": dict(sorted(self.labels.items())),
            "tick": self.tick,
            "value": self.value,
            "message": self.message,
        }


def _matches(series: Series, pattern: str, labels: dict | None) -> bool:
    """Name match (exact, or prefix via a trailing ``*``) plus label
    subset match."""
    if pattern.endswith("*"):
        if not series.name.startswith(pattern[:-1]):
            return False
    elif series.name != pattern:
        return False
    for key, value in (labels or {}).items():
        if series.labels.get(key) != str(value):
            return False
    return True


class Rule:
    """Base: ``evaluate`` returns the alerts this rule fires right now."""

    kind = "rule"

    def __init__(
        self,
        name: str,
        series: str,
        severity: str = SEVERITY_WARNING,
        labels: dict | None = None,
    ) -> None:
        if severity not in (SEVERITY_INFO, SEVERITY_WARNING, SEVERITY_CRITICAL):
            raise ValueError(f"unknown severity {severity!r}")
        self.name = name
        self.series_pattern = series
        self.severity = severity
        self.labels = dict(labels or {})

    def matching(self, hub: TelemetryHub) -> list[Series]:
        return [
            series
            for series in hub.all_series(include_volatile=True)
            if _matches(series, self.series_pattern, self.labels)
        ]

    def evaluate(self, hub: TelemetryHub) -> list[Alert]:
        raise NotImplementedError

    def describe(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "series": self.series_pattern,
            "severity": self.severity,
            "labels": dict(sorted(self.labels.items())),
        }

    def _alert(self, series: Series, tick: int, value: float, message: str) -> Alert:
        return Alert(
            rule=self.name,
            severity=self.severity,
            series=series.name,
            labels=dict(series.labels),
            tick=tick,
            value=value,
            message=message,
        )


class ThresholdRule(Rule):
    """Latest sample of every matching series vs a fixed limit."""

    kind = "threshold"

    def __init__(
        self,
        name: str,
        series: str,
        op: str,
        limit: float,
        severity: str = SEVERITY_WARNING,
        labels: dict | None = None,
    ) -> None:
        super().__init__(name, series, severity, labels)
        if op not in _OPS:
            raise ValueError(f"unknown comparison {op!r}; available: {sorted(_OPS)}")
        self.op = op
        self.limit = limit

    def evaluate(self, hub: TelemetryHub) -> list[Alert]:
        alerts = []
        for series in self.matching(hub):
            sample = series.last()
            if sample is None:
                continue
            tick, value = sample
            if _OPS[self.op](value, self.limit):
                alerts.append(
                    self._alert(
                        series,
                        tick,
                        value,
                        f"{series.name} is {value:g} (limit: {self.op} "
                        f"{self.limit:g} fires)",
                    )
                )
        return alerts

    def describe(self) -> dict:
        description = super().describe()
        description.update({"op": self.op, "limit": self.limit})
        return description


class DeltaRule(Rule):
    """Growth of a series over a trailing tick window vs a limit."""

    kind = "delta"

    def __init__(
        self,
        name: str,
        series: str,
        max_increase: float,
        window: int,
        severity: str = SEVERITY_WARNING,
        labels: dict | None = None,
    ) -> None:
        super().__init__(name, series, severity, labels)
        if window < 1:
            raise ValueError("window must be at least 1 tick")
        self.max_increase = max_increase
        self.window = window

    def evaluate(self, hub: TelemetryHub) -> list[Alert]:
        alerts = []
        now = hub.current_tick
        for series in self.matching(hub):
            recent = series.window(self.window, now)
            if len(recent) < 2:
                continue
            increase = recent[-1][1] - recent[0][1]
            if increase > self.max_increase:
                alerts.append(
                    self._alert(
                        series,
                        recent[-1][0],
                        increase,
                        f"{series.name} grew by {increase:g} over the last "
                        f"{self.window} tick(s) (limit {self.max_increase:g})",
                    )
                )
        return alerts

    def describe(self) -> dict:
        description = super().describe()
        description.update({"max_increase": self.max_increase, "window": self.window})
        return description


class SloBurnRule(Rule):
    """Error-budget burn: window growth ÷ (budget per window) > 1×."""

    kind = "slo-burn"

    def __init__(
        self,
        name: str,
        series: str,
        budget: float,
        window: int,
        severity: str = SEVERITY_WARNING,
        labels: dict | None = None,
    ) -> None:
        super().__init__(name, series, severity, labels)
        if budget <= 0:
            raise ValueError("budget must be positive (use threshold for zero)")
        if window < 1:
            raise ValueError("window must be at least 1 tick")
        self.budget = budget
        self.window = window

    def evaluate(self, hub: TelemetryHub) -> list[Alert]:
        alerts = []
        now = hub.current_tick
        for series in self.matching(hub):
            recent = series.window(self.window, now)
            if not recent:
                continue
            start = recent[0][1] if len(recent) > 1 else 0.0
            burn = (recent[-1][1] - start) / self.budget
            if burn > 1.0:
                alerts.append(
                    self._alert(
                        series,
                        recent[-1][0],
                        burn,
                        f"{series.name} burned {burn:.2f}x its error budget "
                        f"({self.budget:g} per {self.window} tick(s))",
                    )
                )
        return alerts

    def describe(self) -> dict:
        description = super().describe()
        description.update({"budget": self.budget, "window": self.window})
        return description


class LeakBudgetRule(Rule):
    """Structural leakage vs the per-scheme budget table.

    Watches ``leak.structural`` series (one per monitored scheme, the
    monitor sums the structural probe counters into it) and fires when a
    scheme with a finite budget exceeds it.  Schemes with budget None
    are exempt: the broken schemes leak by construction and the paper's
    claim is exactly that.
    """

    kind = "leak-budget"

    def __init__(
        self,
        name: str = "leak-budget",
        series: str = "leak.structural",
        budgets: dict[str, int | None] | None = None,
        label_key: str = "scheme",
        severity: str = SEVERITY_CRITICAL,
    ) -> None:
        super().__init__(name, series, severity)
        self.budgets = dict(LEAK_BUDGETS if budgets is None else budgets)
        self.label_key = label_key

    def evaluate(self, hub: TelemetryHub) -> list[Alert]:
        alerts = []
        for series in self.matching(hub):
            scheme = series.labels.get(self.label_key)
            budget = self.budgets.get(scheme, 0)
            if budget is None:
                continue
            sample = series.last()
            if sample is None:
                continue
            tick, value = sample
            if value > budget:
                alerts.append(
                    self._alert(
                        series,
                        tick,
                        value,
                        f"scheme {scheme!r} recorded {value:g} structural "
                        f"leak event(s); its budget is {budget:g}",
                    )
                )
        return alerts

    def describe(self) -> dict:
        description = super().describe()
        description.update(
            {"budgets": dict(sorted(self.budgets.items(), key=lambda kv: kv[0])),
             "label_key": self.label_key}
        )
        return description


class BaselineP99Rule(Rule):
    """p99 latency vs a pinned ``BENCH_<n>.json`` baseline.

    Watches the volatile ``*.seconds.p99`` series the monitor samples
    from the registry and compares each against the same histogram's p99
    in the baseline report entry for the matching (scenario, config).
    Wall time on shared runners is noisy, so the default tolerance
    matches the CI bench gate (fail beyond 4× baseline).
    """

    kind = "p99-baseline"

    def __init__(
        self,
        baseline: dict,
        name: str = "p99-regression",
        tolerance: float = 3.0,
        severity: str = SEVERITY_WARNING,
    ) -> None:
        super().__init__(name, "*", severity)
        self.tolerance = tolerance
        self._baseline_p99: dict[tuple[str, str, str], float] = {}
        for entry in baseline.get("scenarios", []):
            if entry.get("skipped"):
                continue
            for metric, summary in (entry.get("histograms") or {}).items():
                p99 = summary.get("p99")
                if p99:
                    key = (entry["scenario"], entry["config"], metric)
                    self._baseline_p99[key] = p99

    def evaluate(self, hub: TelemetryHub) -> list[Alert]:
        alerts = []
        for series in self.matching(hub):
            if not series.name.endswith(".seconds.p99"):
                continue
            metric = series.name[: -len(".p99")]
            key = (
                series.labels.get("scenario", ""),
                series.labels.get("config", ""),
                metric,
            )
            pinned = self._baseline_p99.get(key)
            sample = series.last()
            if pinned is None or sample is None:
                continue
            tick, value = sample
            if value > pinned * (1.0 + self.tolerance):
                alerts.append(
                    self._alert(
                        series,
                        tick,
                        value,
                        f"{metric} p99 {value:.6f}s is "
                        f"{value / pinned:.2f}x the pinned baseline "
                        f"{pinned:.6f}s (tolerance {1.0 + self.tolerance:.2f}x)",
                    )
                )
        return alerts

    def describe(self) -> dict:
        description = super().describe()
        description.update(
            {"tolerance": self.tolerance, "pinned_series": len(self._baseline_p99)}
        )
        return description


#: Declarative kinds ``parse_rule`` accepts from a JSON rule file.
_RULE_KINDS = {"threshold", "delta", "slo-burn"}


def parse_rule(spec: dict) -> Rule:
    """Build one rule from its declarative form.

    ``{"rule": "threshold", "name": ..., "series": ..., "op": ">",
    "limit": 0}`` — see the rule syntax table in
    ``docs/observability.md``.  Raises ValueError on anything malformed
    so a bad ``--rules`` file fails loudly, not silently green.
    """
    if not isinstance(spec, dict):
        raise ValueError("rule spec must be an object")
    kind = spec.get("rule")
    if kind not in _RULE_KINDS:
        raise ValueError(
            f"unknown rule kind {kind!r}; available: {', '.join(sorted(_RULE_KINDS))}"
        )
    name = spec.get("name")
    series = spec.get("series")
    if not isinstance(name, str) or not name:
        raise ValueError("rule needs a non-empty 'name'")
    if not isinstance(series, str) or not series:
        raise ValueError(f"rule {name!r} needs a non-empty 'series'")
    severity = spec.get("severity", SEVERITY_WARNING)
    labels = spec.get("labels")
    try:
        if kind == "threshold":
            return ThresholdRule(
                name, series, spec.get("op", ">"), float(spec["limit"]),
                severity=severity, labels=labels,
            )
        if kind == "delta":
            return DeltaRule(
                name, series, float(spec["max_increase"]), int(spec["window"]),
                severity=severity, labels=labels,
            )
        return SloBurnRule(
            name, series, float(spec["budget"]), int(spec["window"]),
            severity=severity, labels=labels,
        )
    except KeyError as exc:
        raise ValueError(f"rule {name!r} is missing field {exc.args[0]!r}") from None
    except (TypeError, ValueError) as exc:
        raise ValueError(f"rule {name!r}: {exc}") from None


def load_rules(specs: Sequence[dict]) -> list[Rule]:
    return [parse_rule(spec) for spec in specs]


def default_rules(
    baseline: dict | None = None,
    allow_replay: bool = False,
    allow_fallback: bool = False,
    p99_tolerance: float = 3.0,
) -> list[Rule]:
    """The built-in rule set.

    ``allow_replay`` / ``allow_fallback`` drop the WAL rules for
    workloads that *deliberately* crash and recover (the crash/rotation
    campaigns, the ``wal_replay`` bench scenario) — replay there is the
    behaviour under test, not an incident.  ``baseline`` (a parsed
    ``BENCH_<n>.json``) arms the p99 regression rule.
    """
    rules: list[Rule] = [
        ThresholdRule(
            "sect4-drift", "sect4.drift", ">", 0, severity=SEVERITY_CRITICAL
        ),
        ThresholdRule(
            "shard-degraded", "shard.degraded", ">", 0, severity=SEVERITY_CRITICAL
        ),
        ThresholdRule(
            "rows-quarantined",
            "recovery.rows_quarantined",
            ">",
            0,
            severity=SEVERITY_WARNING,
        ),
        LeakBudgetRule(),
        # Resilience-layer rules (PR 9): an unrepairable blob means the
        # scrubber found data with no authentic copy on any replica —
        # an incident everywhere.  Write failures and read-repairs are
        # absorbed by the quorum, so they warn rather than page.
        ThresholdRule(
            "scrub-unrepaired",
            "scrub.unrepaired",
            ">",
            0,
            severity=SEVERITY_CRITICAL,
        ),
        ThresholdRule(
            "replica-write-failures",
            "replica.write_failures",
            ">",
            0,
            severity=SEVERITY_WARNING,
        ),
        ThresholdRule(
            "replica-read-repairs",
            "replica.read_repairs",
            ">",
            0,
            severity=SEVERITY_WARNING,
        ),
    ]
    if not allow_fallback:
        rules.append(
            ThresholdRule(
                "wal-fallback",
                "wal.fallback.events",
                ">",
                0,
                severity=SEVERITY_CRITICAL,
            )
        )
    if not allow_replay:
        rules.append(
            ThresholdRule(
                "wal-replay",
                "wal.replay.records",
                ">",
                0,
                severity=SEVERITY_WARNING,
            )
        )
    if baseline is not None:
        rules.append(BaselineP99Rule(baseline, tolerance=p99_tolerance))
    return rules


class HealthEngine:
    """Evaluate a rule set; remember how often each rule fired."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        names = [rule.name for rule in rules]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValueError(f"duplicate rule name(s): {', '.join(sorted(duplicates))}")
        self.rules = list(rules)
        self.fired: dict[str, int] = {rule.name: 0 for rule in rules}

    def evaluate(self, hub: TelemetryHub) -> list[Alert]:
        alerts = []
        for rule in self.rules:
            fired = rule.evaluate(hub)
            self.fired[rule.name] += len(fired)
            for alert in fired:
                RECORDER.record_alert(alert.to_dict())
            alerts.extend(fired)
        return alerts

    def report(self) -> list[dict]:
        rows = []
        for rule in self.rules:
            row = rule.describe()
            row["fired"] = self.fired[rule.name]
            rows.append(row)
        return rows
