"""Streaming leakage monitor: audit events in, probe verdicts out.

Consumes the event stream of :mod:`repro.observability.audit` — online
via ``AUDIT.subscribe`` or offline via :meth:`LeakMonitor.feed_all` on a
replayed JSONL log — and maintains the same six probe verdicts as the
offline :mod:`repro.analysis.leakage` matrix:

* ``equality``       — two cells of one column share 4+ leading
  ciphertext blocks (attack E1: deterministic E makes equal plaintexts
  visible).
* ``prefix``         — two cells share their first ciphertext block
  (attack E2/E3: shared plaintext prefixes survive CBC with fixed IVs).
* ``frequency``      — one ciphertext pattern dominates a column (>50 %
  of 8+ samples), enough for histogram rank matching.
* ``index_linkage``  — a leaf index entry's value ciphertext collides
  with a cell of the indexed column (attacks E4/E6).
* ``cell_forgery``   — a cell decrypts *successfully* from bytes that
  differ from what the codec last wrote there (Sect. 3.3: blind
  modification accepted as valid).
* ``access_pattern`` — two queries touched the identical non-empty
  sequence of index nodes (Sect. 3.2: traces link repeated queries).

Every estimator is a monotone sketch over block digests: once leaked,
always leaked — which is the right semantics for an audit (the
adversary saw it).  Plaintext schemes are leaky by inspection, so
seeing a ``plain`` cell or index codec forces the corresponding
verdicts, exactly like the offline profiler.
"""

from __future__ import annotations

from repro.observability.audit import AUDIT
from repro.observability.metrics import MetricsRegistry

#: Offline probe names, in report order (mirrors analysis.leakage.PROBES
#: without importing it — observability stays below the analysis layer).
PROBES = (
    "equality",
    "prefix",
    "frequency",
    "index_linkage",
    "cell_forgery",
    "access_pattern",
)

#: Leading full blocks that must match before two cells count as equal
#: (the offline equality probe's ``min_blocks=4``).
EQUALITY_BLOCKS = 4

#: Minimum samples before a column's histogram is considered rankable.
FREQUENCY_MIN_SAMPLES = 8

#: Modal share above which the histogram is considered recoverable.
FREQUENCY_MODAL_SHARE = 0.5

#: CLI slugs for the six campaign configurations.
CONFIG_SLUGS = {
    "plain": "plaintext baseline",
    "xor": "[3] XOR-Scheme",
    "append": "[3] Append-Scheme",
    "dbsec2005": "[12] index (+append cells)",
    "aead-eax": "fixed AEAD (EAX)",
    "aead-ocb": "fixed AEAD (OCB)",
}


class LeakMonitor:
    """Online leakage estimation over an audit-event stream.

    Feed it events (``feed`` / ``feed_all`` / ``AUDIT.subscribe``); read
    ``verdicts()`` at any point.  Counts are published to ``registry``
    as ``leak.*`` metrics so snapshots can be exported and diffed.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        if registry is None:
            registry = MetricsRegistry()
            registry.enable()
        self.registry = registry
        # (table, col) → digest-prefix key → count, per granularity.  The
        # first-block histogram serves both the prefix and the frequency
        # estimators.
        self._equality: dict[tuple, dict[tuple, int]] = {}
        self._prefix: dict[tuple, dict[str, int]] = {}
        # (table, col) → first-block digests, cells vs leaf index entries.
        self._cell_blocks: dict[tuple, set[str]] = {}
        self._index_blocks: dict[tuple, set[str]] = {}
        self._linkage_found = False
        # Last digests the codec wrote per cell address.
        self._written: dict[tuple, tuple] = {}
        self._forgery_accepted = 0
        self._forgery_rejected = 0
        # Query-trace grouping.
        self._query_depth = 0
        self._trace: list = []
        self._seen_traces: set[tuple] = set()
        self._linked_queries = 0
        self._plain_cells = False
        self._plain_index = False
        self._events = 0

    # -- ingestion ----------------------------------------------------------

    def feed(self, event: dict) -> None:
        """Consume one audit event (order-tolerant, duplicates harmless)."""
        self._events += 1
        self.registry.counter("leak.events").inc()
        kind = event.get("kind")
        if kind == "cell.encrypt":
            self._on_cell_encrypt(event)
        elif kind == "cell.decrypt":
            self._on_cell_decrypt(event)
        elif kind == "index.encode":
            self._on_index_encode(event)
        elif kind == "index.node_read":
            if self._query_depth > 0:
                self._trace.append((event.get("index"), event.get("node")))
        elif kind == "query.begin":
            if self._query_depth == 0:
                self._trace = []
            self._query_depth += 1
        elif kind == "query.end":
            self._query_depth = max(0, self._query_depth - 1)
            if self._query_depth == 0:
                self._on_query_trace(tuple(self._trace))

    def feed_all(self, events) -> None:
        for event in events:
            self.feed(event)

    # -- per-kind handlers --------------------------------------------------

    def _on_cell_encrypt(self, event: dict) -> None:
        if event.get("scheme") == "plain":
            self._plain_cells = True
        where = (event.get("table"), event.get("col"))
        digests = tuple(event.get("digests") or ())
        if not digests:
            return
        if len(digests) >= EQUALITY_BLOCKS:
            key = digests[:EQUALITY_BLOCKS]
            bucket = self._equality.setdefault(where, {})
            bucket[key] = bucket.get(key, 0) + 1
            if bucket[key] > 1:
                self.registry.counter("leak.equality.collisions").inc()
        first = digests[0]
        bucket = self._prefix.setdefault(where, {})
        bucket[first] = bucket.get(first, 0) + 1
        if bucket[first] > 1:
            self.registry.counter("leak.prefix.collisions").inc()
            self.registry.counter("leak.frequency.repeats").inc()
        self._cell_blocks.setdefault(where, set()).add(first)
        if first in self._index_blocks.get(where, ()):
            self._record_linkage()
        address = (event.get("table"), event.get("row"), event.get("col"))
        self._written[address] = digests

    def _on_cell_decrypt(self, event: dict) -> None:
        address = (event.get("table"), event.get("row"), event.get("col"))
        written = self._written.get(address)
        digests = tuple(event.get("digests") or ())
        if written is None or digests == written:
            return
        # Read of bytes the codec never wrote: a storage-level tamper.
        if event.get("ok"):
            self._forgery_accepted += 1
            self.registry.counter("leak.cell_forgery.accepted").inc()
        else:
            self._forgery_rejected += 1
            self.registry.counter("leak.cell_forgery.rejected").inc()

    def _on_index_encode(self, event: dict) -> None:
        if event.get("codec") == "plain":
            self._plain_index = True
        if not event.get("leaf"):
            return
        digests = event.get("digests") or ()
        if not digests:
            return
        where = (event.get("table"), event.get("col"))
        first = digests[0]
        self._index_blocks.setdefault(where, set()).add(first)
        if first in self._cell_blocks.get(where, ()):
            self._record_linkage()

    def _record_linkage(self) -> None:
        self._linkage_found = True
        self.registry.counter("leak.index_linkage.collisions").inc()

    def _on_query_trace(self, trace: tuple) -> None:
        if not trace:
            return
        if trace in self._seen_traces:
            self._linked_queries += 1
            self.registry.counter("leak.access_pattern.linked_queries").inc()
        self._seen_traces.add(trace)

    # -- verdicts -----------------------------------------------------------

    def _has_collision(self, buckets: dict[tuple, dict]) -> bool:
        return any(
            count > 1
            for bucket in buckets.values()
            for count in bucket.values()
        )

    def _frequency_leaks(self) -> bool:
        for bucket in self._prefix.values():
            total = sum(bucket.values())
            if total >= FREQUENCY_MIN_SAMPLES:
                if max(bucket.values()) > FREQUENCY_MODAL_SHARE * total:
                    return True
        return False

    def verdicts(self) -> dict[str, bool]:
        """Probe → leaked?, aligned with the offline profile matrix."""
        return {
            "equality": self._plain_cells or self._has_collision(self._equality),
            "prefix": self._plain_cells or self._has_collision(self._prefix),
            "frequency": self._plain_cells or self._frequency_leaks(),
            "index_linkage": self._plain_index or self._linkage_found,
            "cell_forgery": self._forgery_accepted > 0,
            "access_pattern": self._linked_queries > 0,
        }

    def summary(self) -> dict:
        """JSON-ready verdicts + metric snapshot for reports/exporters."""
        return {
            "events": self._events,
            "verdicts": self.verdicts(),
            "metrics": self.registry.snapshot(),
        }


def run_live_profile(
    config,
    label: str,
    rows: int = 24,
    seed: str = "leakage-profile",
    sink_path=None,
):
    """Run the leakage-profile workload with the audit log attached.

    Returns ``(monitor, events, offline_results)`` where
    ``offline_results`` comes from a *separate, audit-free* run of the
    identical seeded workload — the reference the streaming verdicts are
    cross-validated against (enabling auditing must never be allowed to
    influence its own reference measurement).
    """
    from repro.analysis.leakage import profile_configuration

    monitor = LeakMonitor()
    AUDIT.reset()
    AUDIT.enable(sink_path=sink_path)
    AUDIT.subscribe(monitor.feed)
    try:
        profile_configuration(config, label, rows=rows, seed=seed)
        events = AUDIT.events()
    finally:
        AUDIT.reset()
    offline = profile_configuration(config, label, rows=rows, seed=seed)
    return monitor, events, dict(offline.results)
