"""Per-query profiles: "EXPLAIN ANALYZE" for the encrypted database.

A :class:`QueryProfile` aggregates one query's span tree (all spans
sharing the root's trace id) into per-operator rows — index descent,
cell decrypt, MAC verify, storage read/write — each with wall time,
bytes moved, and *measured* blockcipher invocations, plus the analytic
expectation the instrumentation layer attached from the paper's Sect. 4
formulas.  ``formula_check`` then states, per query, whether measured
and predicted invocation counts agree exactly — the paper's cost model
as a per-operation executable invariant rather than a per-run total.

This module is pure aggregation over finished spans: run a workload
with observability enabled, then feed ``TRACER.finished()`` to
:func:`build_query_profiles`.  The scenario-driving ``repro explain``
runner lives in :mod:`repro.bench.explain`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.observability.instrument import (
    COST_CIPHER_CALLS,
    COST_CIPHER_CALLS_PREDICTED,
    COST_UNPREDICTED,
)
from repro.observability.trace import Span

#: Span-name prefix marking a root span as a query (see engine/query.py).
QUERY_ROOT_PREFIX = "query."


@dataclass
class OperatorStats:
    """Aggregated self-costs of every span sharing one operator name."""

    operator: str
    spans: int = 0
    wall_seconds: float = 0.0
    cipher_calls: int = 0
    cipher_calls_predicted: int = 0
    unpredicted_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    other_costs: dict = field(default_factory=dict)

    def absorb(self, span: Span) -> None:
        self.spans += 1
        self.wall_seconds += span.duration or 0.0
        for key, amount in span.costs.items():
            if key == COST_CIPHER_CALLS:
                self.cipher_calls += amount
            elif key == COST_CIPHER_CALLS_PREDICTED:
                self.cipher_calls_predicted += amount
            elif key == COST_UNPREDICTED:
                self.unpredicted_ops += amount
            elif key in ("bytes_read", "plain_bytes"):
                self.bytes_read += amount
            elif key in ("bytes_written", "stored_bytes"):
                self.bytes_written += amount
            else:
                self.other_costs[key] = self.other_costs.get(key, 0) + amount

    def to_dict(self) -> dict:
        return {
            "operator": self.operator,
            "spans": self.spans,
            "wall_seconds": self.wall_seconds,
            "cipher_calls": self.cipher_calls,
            "cipher_calls_predicted": self.cipher_calls_predicted,
            "unpredicted_ops": self.unpredicted_ops,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "other_costs": dict(self.other_costs),
        }


@dataclass
class QueryProfile:
    """One root query span plus the aggregated costs of its subtree."""

    name: str
    trace_id: int
    attributes: dict
    wall_seconds: float
    operators: list[OperatorStats]

    @property
    def cipher_calls(self) -> int:
        """Measured blockcipher invocations across the whole query tree."""
        return sum(op.cipher_calls for op in self.operators)

    @property
    def cipher_calls_predicted(self) -> int:
        return sum(op.cipher_calls_predicted for op in self.operators)

    @property
    def unpredicted_ops(self) -> int:
        return sum(op.unpredicted_ops for op in self.operators)

    def formula_check(self) -> dict:
        """The Sect. 4 cross-check for this one query.

        ``applicable`` is False when the tree contains crypto operations
        without an analytic model (then measured and predicted are not
        comparable); otherwise ``ok`` demands exact equality — formula
        plus ``CACHED_PRECOMPUTATION_OFFSET``, no tolerance.
        """
        applicable = self.unpredicted_ops == 0
        measured = self.cipher_calls
        predicted = self.cipher_calls_predicted
        return {
            "applicable": applicable,
            "measured_cipher_calls": measured,
            "predicted_cipher_calls": predicted,
            "ok": applicable and measured == predicted,
        }

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "attributes": dict(self.attributes),
            "wall_seconds": self.wall_seconds,
            "operators": [op.to_dict() for op in self.operators],
            "formula_check": self.formula_check(),
        }


def build_query_profiles(spans: list[Span]) -> list[QueryProfile]:
    """Group finished spans into per-query profiles, in root start order.

    Every span carries its root's trace id, so grouping needs no parent
    chasing; traces whose root is not a ``query.*`` span (storage dumps,
    WAL checkpoints) are ignored.
    """
    roots = [
        span
        for span in spans
        if span.parent_id is None and span.name.startswith(QUERY_ROOT_PREFIX)
    ]
    by_trace: dict[int, list[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)

    profiles = []
    for root in sorted(roots, key=lambda span: span.start):
        operators: dict[str, OperatorStats] = {}
        for span in by_trace.get(root.trace_id, []):
            stats = operators.get(span.name)
            if stats is None:
                stats = operators[span.name] = OperatorStats(span.name)
            stats.absorb(span)
        profiles.append(
            QueryProfile(
                name=root.name,
                trace_id=root.trace_id,
                attributes=dict(root.attributes),
                wall_seconds=root.duration or 0.0,
                operators=list(operators.values()),
            )
        )
    return profiles


def _detail(stats: OperatorStats) -> str:
    parts = [f"{key}={value}" for key, value in sorted(stats.other_costs.items())]
    if stats.unpredicted_ops:
        parts.append(f"unpredicted_ops={stats.unpredicted_ops}")
    return " ".join(parts)


def format_profile(profile: QueryProfile) -> str:
    """Render one profile as an EXPLAIN ANALYZE-style text table."""
    attrs = " ".join(f"{k}={v}" for k, v in sorted(profile.attributes.items()))
    header = (
        f"{profile.name} (trace {profile.trace_id})"
        + (f"  {attrs}" if attrs else "")
    )
    columns = ("operator", "spans", "wall_us", "cipher", "predicted",
               "bytes_r", "bytes_w", "detail")
    rows = []
    for stats in sorted(profile.operators, key=lambda s: -s.wall_seconds):
        rows.append(
            (
                stats.operator,
                str(stats.spans),
                f"{stats.wall_seconds * 1e6:.0f}",
                str(stats.cipher_calls),
                str(stats.cipher_calls_predicted),
                str(stats.bytes_read),
                str(stats.bytes_written),
                _detail(stats),
            )
        )
    check = profile.formula_check()
    if not check["applicable"]:
        verdict = "n/a (operations without an analytic model)"
    elif check["ok"]:
        verdict = "OK (measured == predicted)"
    else:
        verdict = (
            f"MISMATCH (measured {check['measured_cipher_calls']} != "
            f"predicted {check['predicted_cipher_calls']})"
        )
    totals = (
        "TOTAL",
        "",
        f"{profile.wall_seconds * 1e6:.0f}",
        str(profile.cipher_calls),
        str(profile.cipher_calls_predicted),
        "",
        "",
        f"Sect. 4 check: {verdict}",
    )
    table = [columns] + rows + [totals]
    widths = [max(len(row[i]) for row in table) for i in range(len(columns))]
    lines = [header]
    for row in table:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)
