"""Append-only security-event audit log (off by default).

The attacks of Sect. 3 all work from *observable* artifacts — shared
CBC ciphertext prefixes, locally malleable blocks slipping past µ,
linkable index accesses.  This module records exactly those artifacts
as structured JSONL events so an operator can audit what a workload
actually exposed to storage, online (see
:mod:`repro.observability.leakmon`) or after the fact.

Design rules, matching :mod:`repro.observability.metrics`:

1. **Off by default.**  ``AUDIT.enabled`` starts False and every emit
   path begins with that one attribute check, so an un-enabled process
   behaves — and stores — byte-for-byte like an unaudited one.
2. **Observe, never participate.**  Hooks wrap codecs at construction
   time (``maybe_audit_*``, mirroring ``maybe_instrument_*``) and only
   look at the bytes flowing through; they draw no randomness and alter
   no ciphertext, so storage images stay byte-identical with auditing
   enabled (pinned by ``tests/observability``).
3. **No plaintext, no ciphertext.**  Events carry truncated SHA-256
   digests of ciphertext blocks — enough to measure equality/prefix
   leakage, nothing an audit-log reader could decrypt with.
4. **Deterministic replay.**  Events are sequence-numbered and encoded
   with sorted keys; the wall-clock timestamp is the only
   non-deterministic field and lives in its own ``ts`` key that
   :func:`canonical_lines` strips.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.observability.flightrecorder import RECORDER

#: Cipher block size every scheme in the repo uses for leakage analysis.
BLOCK_SIZE = 16

#: Upper bound on digests recorded per event (events stay small even for
#: pathological cell sizes; every estimator looks at the first blocks).
MAX_DIGEST_BLOCKS = 8

#: Hex characters kept per block digest (48 bits — collision-free for
#: workload-sized populations, useless for decryption).
DIGEST_HEX = 12


class AuditError(Exception):
    """A malformed audit log (unreadable, truncated, or non-JSONL)."""


def block_digests(data: bytes, limit: int = MAX_DIGEST_BLOCKS) -> list[str]:
    """Truncated SHA-256 of each *full* leading ciphertext block."""
    full = len(data) // BLOCK_SIZE
    return [
        hashlib.sha256(
            data[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
        ).hexdigest()[:DIGEST_HEX]
        for i in range(min(full, limit))
    ]


def comparable_ciphertext(stored: bytes) -> bytes:
    """The deterministically comparable portion of a stored value.

    AEAD entries are framed ``(N, C, T)`` records; the adversary of
    Sect. 3 compares the C component.  Anything else is compared raw.
    (Duplicated from :mod:`repro.attacks.pattern_matching` on purpose:
    observability must not import the attack layer.)
    """
    from repro.aead.base import StoredEntry

    try:
        return StoredEntry.from_bytes(stored).ciphertext
    except ValueError:
        return stored


class AuditLog:
    """A process-wide, append-only stream of security events.

    Events are dicts with a ``kind`` plus kind-specific fields; every
    event gets a monotonic ``seq`` and (optionally) a wall-clock ``ts``.
    Consumers subscribe for online processing; an optional JSONL sink
    persists the stream.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.record_timestamps = True
        self._lock = threading.Lock()
        self._seq = 0
        self._buffer: list[dict] = []
        self._sink = None
        self._consumers: list[Callable[[dict], None]] = []

    # -- lifecycle ----------------------------------------------------------

    def enable(
        self,
        sink_path: str | Path | None = None,
        timestamps: bool = True,
    ) -> None:
        """Start recording; optionally append JSONL lines to a file."""
        with self._lock:
            if sink_path is not None:
                self._sink = open(sink_path, "a", encoding="utf-8")
            self.record_timestamps = timestamps
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    def reset(self) -> None:
        """Drop buffered events, close the sink, restart numbering."""
        self.disable()
        with self._lock:
            self._seq = 0
            self._buffer = []
            self._consumers = []

    # -- consumers ----------------------------------------------------------

    def subscribe(self, consumer: Callable[[dict], None]) -> None:
        self._consumers.append(consumer)

    def unsubscribe(self, consumer: Callable[[dict], None]) -> None:
        if consumer in self._consumers:
            self._consumers.remove(consumer)

    # -- emission -----------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        """Record one event; a no-op while the log is disabled."""
        if not self.enabled:
            return
        with self._lock:
            self._seq += 1
            event: dict = {"kind": kind, "seq": self._seq}
            if self.record_timestamps:
                event["ts"] = time.time()
            event.update(fields)
            self._buffer.append(event)
            if self._sink is not None:
                self._sink.write(encode_line(event) + "\n")
        for consumer in self._consumers:
            consumer(event)
        RECORDER.record_audit(event)

    def events(self) -> list[dict]:
        return list(self._buffer)


#: The process-wide audit log every hook reports to.
AUDIT = AuditLog()


# -- serialisation ----------------------------------------------------------


def encode_line(event: dict) -> str:
    """One event as a canonical JSONL line (sorted keys, no spaces)."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def canonical_lines(events: Iterable[dict]) -> list[str]:
    """Deterministic serialisation: identical workloads give identical
    lines because the wall-clock ``ts`` field is dropped."""
    return [
        encode_line({k: v for k, v in event.items() if k != "ts"})
        for event in events
    ]


def write_events(path: str | Path, events: Iterable[dict]) -> Path:
    path = Path(path)
    path.write_text("".join(encode_line(e) + "\n" for e in events))
    return path


def read_events(path: str | Path) -> list[dict]:
    """Parse a JSONL audit log; raises :class:`AuditError` on garbage."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AuditError(f"cannot read audit log {path}: {exc}") from None
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise AuditError(
                f"{path}:{lineno}: not valid JSON ({exc.msg}) — "
                "truncated or corrupt audit log?"
            ) from None
        if not isinstance(event, dict) or "kind" not in event:
            raise AuditError(
                f"{path}:{lineno}: not an audit event object (missing 'kind')"
            )
        events.append(event)
    return events


# -- codec hooks ------------------------------------------------------------


def _unwrap(codec: Any) -> Any:
    """The innermost codec behind any auditing wrappers."""
    return getattr(codec, "unwrapped", codec)


class AuditingCellCodec:
    """Wraps a cell codec; emits ``cell.encrypt`` / ``cell.decrypt``.

    Pure pass-through for the bytes: the stored form is exactly what the
    wrapped codec produced, so storage images are unchanged.
    """

    def __init__(self, inner) -> None:
        self._inner = inner

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def unwrapped(self):
        return _unwrap(self._inner)

    def __getattr__(self, attribute: str):
        if attribute == "_inner":
            raise AttributeError(attribute)
        return getattr(self._inner, attribute)

    def encode_cell(self, plaintext: bytes, address) -> bytes:
        stored = self._inner.encode_cell(plaintext, address)
        digests = block_digests(comparable_ciphertext(stored))
        AUDIT.emit(
            "cell.encrypt",
            scheme=self.name,
            table=address.table,
            row=address.row,
            col=address.column,
            bytes=len(stored),
            digests=digests,
        )
        return stored

    def decode_cell(self, stored: bytes, address) -> bytes:
        digests = block_digests(comparable_ciphertext(stored))
        try:
            plaintext = self._inner.decode_cell(stored, address)
        except Exception as exc:
            AUDIT.emit(
                "cell.decrypt",
                scheme=self.name,
                table=address.table,
                row=address.row,
                col=address.column,
                bytes=len(stored),
                digests=digests,
                ok=False,
                error=type(exc).__name__,
            )
            raise
        AUDIT.emit(
            "cell.decrypt",
            scheme=self.name,
            table=address.table,
            row=address.row,
            col=address.column,
            bytes=len(stored),
            digests=digests,
            ok=True,
        )
        return plaintext

    # Batch methods need explicit overrides: ``__getattr__`` delegation
    # would route them to the inner codec and silently skip every audit
    # event.  Bytes are still the inner codec's batch output; events are
    # emitted per cell in list order, same as the sequential loop.

    def encode_cells(self, items) -> list[bytes]:
        items = list(items)
        stored_batch = self._inner.encode_cells(items)
        for (_, address), stored in zip(items, stored_batch):
            AUDIT.emit(
                "cell.encrypt",
                scheme=self.name,
                table=address.table,
                row=address.row,
                col=address.column,
                bytes=len(stored),
                digests=block_digests(comparable_ciphertext(stored)),
            )
        return stored_batch

    def decode_cells(self, items) -> list[bytes]:
        # Decode sequentially so a failing cell emits its ok=False event
        # exactly where the sequential path would.
        return [self.decode_cell(stored, address) for stored, address in items]


class AuditingIndexCodec:
    """Wraps an index-entry codec; emits ``index.encode`` events (node
    writes) and ``index.decode`` events for failed verifications.

    ``decode_for_query`` is delegated *explicitly*: the codec ABC's
    default implementation always verifies, which would silently disable
    the faithful leaf bug the [12] reproduction depends on.
    """

    def __init__(
        self, inner, index_table_id: int, table_id: int, column_pos: int
    ) -> None:
        self._inner = inner
        self._index_table_id = index_table_id
        self._table_id = table_id
        self._column_pos = column_pos

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def unwrapped(self):
        return _unwrap(self._inner)

    def __getattr__(self, attribute: str):
        if attribute == "_inner":
            raise AttributeError(attribute)
        return getattr(self._inner, attribute)

    def _value_ciphertext(self, payload: bytes) -> bytes:
        # The [12] framing is public: the first component is Ẽ(V).  The
        # same split the Sect. 3.2 adversary performs.
        inner = self.unwrapped
        if hasattr(inner, "split_payload"):
            value_ct, _, _ = inner.split_payload(payload)
            return value_ct
        return comparable_ciphertext(payload)

    def encode(self, key: bytes, table_row, refs) -> bytes:
        payload = self._inner.encode(key, table_row, refs)
        AUDIT.emit(
            "index.encode",
            codec=self.name,
            index=self._index_table_id,
            table=self._table_id,
            col=self._column_pos,
            leaf=bool(refs.is_leaf),
            bytes=len(payload),
            digests=block_digests(self._value_ciphertext(payload)),
        )
        return payload

    def _audited_decode(self, operation, leaf: bool):
        try:
            return operation()
        except Exception as exc:
            AUDIT.emit(
                "index.decode",
                codec=self.name,
                index=self._index_table_id,
                table=self._table_id,
                col=self._column_pos,
                leaf=leaf,
                ok=False,
                error=type(exc).__name__,
            )
            raise

    def decode(self, payload: bytes, refs):
        return self._audited_decode(
            lambda: self._inner.decode(payload, refs), bool(refs.is_leaf)
        )

    def decode_for_query(self, payload: bytes, refs, at_leaf: bool):
        return self._audited_decode(
            lambda: self._inner.decode_for_query(payload, refs, at_leaf),
            bool(refs.is_leaf),
        )


class AuditingMAC:
    """Wraps a MAC; a failed ``verify`` emits ``mac.verify_failure``.

    ``MAC.verify`` reports by boolean, not by exception — the wrapper
    must return that boolean untouched.
    """

    def __init__(self, inner) -> None:
        self._inner = inner

    @property
    def unwrapped(self):
        return _unwrap(self._inner)

    def __getattr__(self, attribute: str):
        if attribute == "_inner":
            raise AttributeError(attribute)
        return getattr(self._inner, attribute)

    def tag(self, message: bytes) -> bytes:
        return self._inner.tag(message)

    def verify(self, message: bytes, tag: bytes) -> bool:
        ok = self._inner.verify(message, tag)
        if not ok:
            AUDIT.emit(
                "mac.verify_failure",
                mac=getattr(self._inner, "name", type(self.unwrapped).__name__),
            )
        return ok


def maybe_audit_cell_codec(codec):
    """Wrap iff auditing is enabled right now (construction-time switch,
    mirroring ``maybe_instrument_*``)."""
    return AuditingCellCodec(codec) if AUDIT.enabled else codec


def maybe_audit_index_codec(codec, index_table_id: int, table_id: int, column_pos: int):
    if AUDIT.enabled:
        return AuditingIndexCodec(codec, index_table_id, table_id, column_pos)
    return codec


def maybe_audit_mac(mac):
    return AuditingMAC(mac) if AUDIT.enabled else mac
