"""Zero-dependency metrics: counters, histograms, and timers.

The ROADMAP's north star — an engine that runs "as fast as the hardware
allows" — cannot be steered without measurement, and the paper's own
cost model (Sect. 4) is stated in countable units: blockcipher
invocations and per-entry storage octets.  This registry makes those
quantities (plus wall time) observable at runtime.

Design constraints, in order:

1. **Off by default.**  A freshly imported registry records nothing.
2. **Near-zero disabled cost.**  Every mutate path begins with a single
   ``enabled`` attribute check; hot call sites additionally guard with
   ``if REGISTRY.enabled:`` so the disabled path is one boolean test.
3. **Thread-safe when enabled.**  Each metric carries its own lock, so
   concurrent increments never lose updates (the engine is headed for
   concurrent workloads; see ROADMAP).
4. **No dependencies.**  Standard library only, importable from any
   layer without cycles.
"""

from __future__ import annotations

import hashlib
import threading
import time

#: Initial LCG state of every histogram reservoir.  Runs that want
#: quantiles tied to their workload identity reseed via
#: :meth:`MetricsRegistry.seed_reservoirs`.
DEFAULT_RESERVOIR_SEED = 0x9E3779B97F4A7C15


def reservoir_state(token: str | int) -> int:
    """A non-zero 64-bit LCG state derived from run metadata.

    Hashing keeps unrelated tokens (seeds, config names) from colliding
    into correlated sample streams; the ``or`` guard avoids the LCG's
    one weak state.
    """
    if isinstance(token, int):
        token = str(token)
    digest = hashlib.sha256(b"repro-reservoir/" + token.encode()).digest()
    return int.from_bytes(digest[:8], "big") or DEFAULT_RESERVOIR_SEED


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "_registry", "_lock", "_value")

    def __init__(self, name: str, registry: "MetricsRegistry") -> None:
        self.name = name
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount``; a no-op while the registry is disabled."""
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Histogram:
    """Streaming summary of observed values: count, sum, min, max, and
    percentile estimates from a fixed-size sample reservoir.

    Deliberately not bucketed — the bench reporter wants exact counts
    and totals.  Percentiles come from uniform reservoir sampling
    (Vitter's algorithm R) over at most :data:`RESERVOIR_SIZE` retained
    samples, so arbitrarily long benchmark runs stay O(1) in memory; the
    replacement index is drawn from a private 64-bit LCG, keeping the
    process's global RNG state untouched (instrumentation must never
    perturb the deterministic workloads it observes).
    """

    #: Retained samples; exact percentiles up to this many observations.
    RESERVOIR_SIZE = 1024

    __slots__ = (
        "name",
        "_registry",
        "_lock",
        "count",
        "total",
        "min",
        "max",
        "_samples",
        "_rng_state",
        "_seed_state",
    )

    def __init__(
        self,
        name: str,
        registry: "MetricsRegistry",
        seed_state: int = DEFAULT_RESERVOIR_SEED,
    ) -> None:
        self.name = name
        self._registry = registry
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._seed_state = seed_state
        self._rng_state = seed_state

    def seed(self, state: int) -> None:
        """Pin the reservoir's RNG to ``state`` (and make :meth:`reset`
        return to it), so two same-seed runs retain identical samples —
        and therefore report identical p50/p95/p99 — no matter what ran
        in the process before them."""
        with self._lock:
            self._seed_state = state
            self._rng_state = state

    def observe(self, value: float) -> None:
        """Record one sample; a no-op while the registry is disabled."""
        if not self._registry.enabled:
            return
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._samples) < self.RESERVOIR_SIZE:
                self._samples.append(value)
            else:
                self._rng_state = (
                    self._rng_state * 6364136223846793005 + 1442695040888963407
                ) % (1 << 64)
                slot = self._rng_state % self.count
                if slot < self.RESERVOIR_SIZE:
                    self._samples[slot] = value

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def percentile(self, fraction: float) -> float | None:
        """Nearest-rank percentile estimate from the reservoir
        (``fraction`` in [0, 1]); None before the first sample."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[rank]

    def reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min = None
            self.max = None
            self._samples = []
            # Back to the seed state: without this, the reservoir's
            # replacement choices — and so the reported percentiles —
            # would depend on whatever the process observed before the
            # reset, breaking same-seed reproducibility across scenarios.
            self._rng_state = self._seed_state

    def summary(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class Timer:
    """Context manager feeding elapsed seconds into a histogram."""

    __slots__ = ("_histogram", "_registry", "_start")

    def __init__(self, histogram: Histogram, registry: "MetricsRegistry") -> None:
        self._histogram = histogram
        self._registry = registry
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        if self._registry.enabled:
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self._histogram.observe(time.perf_counter() - self._start)
            self._start = None


class MetricsRegistry:
    """A named collection of counters and histograms with one switch.

    ``enabled`` starts False: instrumented code paths read it once and
    fall through, so a database built with the registry off behaves —
    and stores — byte-for-byte like an uninstrumented one (pinned by the
    regression tests in ``tests/observability``).
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._reservoir_seed = DEFAULT_RESERVOIR_SEED

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric (between benchmark scenarios)."""
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for histogram in self._histograms.values():
                histogram.reset()

    def seed_reservoirs(self, token: str | int) -> None:
        """Seed every histogram reservoir — current and future — from
        run metadata (a workload seed, a report id) so reported
        quantiles are reproducible across identical runs."""
        state = reservoir_state(token)
        with self._lock:
            self._reservoir_seed = state
            histograms = list(self._histograms.values())
        for histogram in histograms:
            histogram.seed(state)

    # -- metric access ------------------------------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter(name, self))

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(
                    name, Histogram(name, self, seed_state=self._reservoir_seed)
                )

    def timer(self, name: str) -> Timer:
        """A fresh context manager timing into ``histogram(name)``."""
        return Timer(self.histogram(name), self)

    # -- reporting ----------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Non-zero counter values, sorted by name."""
        return {
            name: counter.value
            for name, counter in sorted(self._counters.items())
            if counter.value
        }

    def histograms(self) -> dict[str, dict]:
        """Summaries of every histogram that saw at least one sample."""
        return {
            name: histogram.summary()
            for name, histogram in sorted(self._histograms.items())
            if histogram.count
        }

    def snapshot(self) -> dict:
        """One JSON-ready view of everything recorded so far."""
        return {"counters": self.counters(), "histograms": self.histograms()}


#: The process-wide registry every instrumented call site reports to.
REGISTRY = MetricsRegistry()
