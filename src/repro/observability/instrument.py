"""Instrumentation hooks: wrappers and decorators feeding the registry.

Three kinds of hook, matching the paper's cost model and the engine's
layering:

* **Primitive wrappers** — :class:`InstrumentedCipher`,
  :class:`InstrumentedAEAD`, :class:`InstrumentedMAC` wrap a concrete
  object and count every invocation (the Sect. 4 unit of account is
  *blockcipher invocations*, so the cipher wrapper is the ground truth
  the bench harness checks against the paper's formulas).
* **``maybe_*`` factories** — return the object unwrapped while the
  registry is disabled, so disabled configurations carry literally zero
  wrapper overhead.  Enable observability *before* constructing an
  :class:`~repro.core.encrypted_db.EncryptedDatabase` to get primitive
  counts.
* **The :func:`timed` decorator** — for engine entry points (insert,
  query paths, storage dump/load); checks ``REGISTRY.enabled`` first,
  so the disabled cost is one function call and one boolean test.

Metric names are dotted and stable; ``docs/observability.md`` is the
catalogue.
"""

from __future__ import annotations

import functools
import time
from collections.abc import Sequence
from typing import Callable, TypeVar

from repro.aead.base import AEAD
from repro.mac.base import MAC
from repro.observability.metrics import REGISTRY
from repro.observability.trace import TRACER
from repro.primitives.blockcipher import BlockCipher

F = TypeVar("F", bound=Callable)

#: Span cost key for measured blockcipher invocations (the Sect. 4 unit).
COST_CIPHER_CALLS = "cipher_calls"
#: Span cost key for the analytic expectation (formula + cached offset).
COST_CIPHER_CALLS_PREDICTED = "cipher_calls_predicted"
#: Span cost key counting crypto operations with no analytic model; a
#: profile's formula check only applies while this stays zero.
COST_UNPREDICTED = "crypto_ops_unpredicted"

_overhead = None


def _overhead_mod():
    """Lazy import: ``repro.analysis`` pulls in the engine stack, which
    imports this package — resolving it at first use breaks the cycle."""
    global _overhead
    if _overhead is None:
        from repro.analysis import overhead

        _overhead = overhead
    return _overhead


def timed(name: str) -> Callable[[F], F]:
    """Count calls and time a function as ``<name>.calls`` / ``<name>.seconds``."""

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: object, **kwargs: object):
            if not REGISTRY.enabled:
                return fn(*args, **kwargs)
            REGISTRY.counter(name + ".calls").inc()
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                REGISTRY.histogram(name + ".seconds").observe(
                    time.perf_counter() - start
                )

        return wrapper  # type: ignore[return-value]

    return decorate


class InstrumentedCipher(BlockCipher):
    """Counts raw block-cipher invocations into the global registry.

    The runtime sibling of
    :class:`~repro.primitives.blockcipher.CountingCipher`: that one
    feeds the controlled Sect. 4 measurements, this one feeds the
    registry from live engine traffic so whole-run invocation counts
    can be cross-checked against the paper's formulas.
    """

    def __init__(self, inner: BlockCipher) -> None:
        self._inner = inner
        self.block_size = inner.block_size
        self.name = inner.name
        self._encrypts = REGISTRY.counter(f"cipher.{inner.name}.encrypt_blocks")
        self._decrypts = REGISTRY.counter(f"cipher.{inner.name}.decrypt_blocks")

    def encrypt_block(self, block: bytes) -> bytes:
        self._encrypts.inc()
        TRACER.add_cost(COST_CIPHER_CALLS)
        return self._inner.encrypt_block(block)

    def decrypt_block(self, block: bytes) -> bytes:
        self._decrypts.inc()
        TRACER.add_cost(COST_CIPHER_CALLS)
        return self._inner.decrypt_block(block)

    # The batch methods must be overridden explicitly: ``__getattr__``
    # delegation would route them straight to the inner cipher and the
    # registry would silently miss every batched invocation.  One batch
    # element == one invocation, exactly as the per-block loop charges.

    def encrypt_blocks(self, blocks: Sequence[bytes]) -> list[bytes]:
        blocks = list(blocks)
        if blocks:
            self._encrypts.inc(len(blocks))
            TRACER.add_cost(COST_CIPHER_CALLS, len(blocks))
        return self._inner.encrypt_blocks(blocks)

    def decrypt_blocks(self, blocks: Sequence[bytes]) -> list[bytes]:
        blocks = list(blocks)
        if blocks:
            self._decrypts.inc(len(blocks))
            TRACER.add_cost(COST_CIPHER_CALLS, len(blocks))
        return self._inner.decrypt_blocks(blocks)

    def __getattr__(self, attr: str):
        if attr == "_inner":
            raise AttributeError(attr)
        return getattr(self._inner, attr)


class InstrumentedAEAD(AEAD):
    """Counts AEAD seals/opens and auth failures; delegates everything else."""

    def __init__(self, inner: AEAD) -> None:
        self._inner = inner
        self.name = inner.name
        self.nonce_size = inner.nonce_size
        self.tag_size = inner.tag_size
        prefix = f"aead.{inner.name}"
        self._encrypts = REGISTRY.counter(prefix + ".encrypts")
        self._decrypts = REGISTRY.counter(prefix + ".decrypts")
        self._rejects = REGISTRY.counter(prefix + ".auth_failures")
        self._plaintext_bytes = REGISTRY.histogram(prefix + ".plaintext_bytes")

    def encrypt(
        self, nonce: bytes, plaintext: bytes, header: bytes = b""
    ) -> tuple[bytes, bytes]:
        self._encrypts.inc()
        self._plaintext_bytes.observe(len(plaintext))
        if TRACER.enabled:
            self._charge_prediction(len(plaintext), len(header))
        return self._inner.encrypt(nonce, plaintext, header)

    def decrypt(
        self, nonce: bytes, ciphertext: bytes, tag: bytes, header: bytes = b""
    ) -> bytes:
        self._decrypts.inc()
        if TRACER.enabled:
            self._charge_prediction(len(ciphertext), len(header))
        try:
            return self._inner.decrypt(nonce, ciphertext, tag, header)
        except Exception:
            self._rejects.inc()
            raise

    def encrypt_batch(
        self, items: Sequence[tuple[bytes, bytes, bytes]]
    ) -> list[tuple[bytes, bytes]]:
        # Explicit override (see InstrumentedCipher): charge per item what
        # the sequential loop would have charged, then take the inner
        # AEAD's amortized path.
        items = list(items)
        for _, plaintext, header in items:
            self._encrypts.inc()
            self._plaintext_bytes.observe(len(plaintext))
            if TRACER.enabled:
                self._charge_prediction(len(plaintext), len(header))
        return self._inner.encrypt_batch(items)

    def decrypt_batch(
        self, items: Sequence[tuple[bytes, bytes, bytes, bytes]]
    ) -> list[bytes]:
        items = list(items)
        for _, ciphertext, _, header in items:
            self._decrypts.inc()
            if TRACER.enabled:
                self._charge_prediction(len(ciphertext), len(header))
        try:
            return self._inner.decrypt_batch(items)
        except Exception:
            self._rejects.inc()
            raise

    def _charge_prediction(self, payload_octets: int, header_octets: int) -> None:
        predicted = _overhead_mod().predicted_aead_invocations(
            self.name, payload_octets, header_octets
        )
        if predicted is None:
            TRACER.add_cost(COST_UNPREDICTED)
        else:
            TRACER.add_cost(COST_CIPHER_CALLS_PREDICTED, predicted)

    def __getattr__(self, attr: str):
        # Scheme-specific extras (block_size, subkey caches) pass through.
        if attr == "_inner":
            raise AttributeError(attr)
        return getattr(self._inner, attr)


class InstrumentedMAC(MAC):
    """Counts tag computations and verification outcomes."""

    def __init__(self, inner: MAC) -> None:
        self._inner = inner
        self.name = inner.name
        self.tag_size = inner.tag_size
        self._tags = REGISTRY.counter(f"mac.{inner.name}.tags")
        self._rejects = REGISTRY.counter(f"mac.{inner.name}.verify_failures")

    def tag(self, message: bytes) -> bytes:
        self._tags.inc()
        if TRACER.enabled:
            if self.name == "omac1":
                TRACER.add_cost(
                    COST_CIPHER_CALLS_PREDICTED,
                    _overhead_mod().predicted_omac_invocations(
                        len(message), self._inner.block_size
                    ),
                )
            elif not self.name.startswith("hmac"):
                # Cipher-backed MACs without an analytic model taint the
                # enclosing profile's formula check; HMACs make no
                # blockcipher calls, so their prediction is zero.
                TRACER.add_cost(COST_UNPREDICTED)
        return self._inner.tag(message)

    def verify(self, message: bytes, tag: bytes) -> bool:
        with TRACER.span("mac.verify", mac=self.name):
            ok = super().verify(message, tag)
        if not ok:
            self._rejects.inc()
        return ok

    def __getattr__(self, attr: str):
        if attr == "_inner":
            raise AttributeError(attr)
        return getattr(self._inner, attr)


def maybe_instrument_cipher(cipher: BlockCipher) -> BlockCipher:
    """Wrap iff observability is enabled at construction time."""
    return InstrumentedCipher(cipher) if REGISTRY.enabled else cipher


def maybe_instrument_aead(aead: AEAD) -> AEAD:
    """Wrap iff observability is enabled at construction time."""
    return InstrumentedAEAD(aead) if REGISTRY.enabled else aead


def maybe_instrument_mac(mac: MAC) -> MAC:
    """Wrap iff observability is enabled at construction time."""
    return InstrumentedMAC(mac) if REGISTRY.enabled else mac
