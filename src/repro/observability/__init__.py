"""Observability: metrics, tracing, and instrumentation hooks.

Off by default.  Typical benchmark usage::

    from repro import observability

    observability.enable()        # before constructing the database
    db = EncryptedDatabase(key, config)   # primitives get instrumented
    ...                                   # run the workload
    print(observability.REGISTRY.snapshot())
    observability.disable()

See ``docs/observability.md`` for the metric catalogue.
"""

from repro.observability.instrument import (
    InstrumentedAEAD,
    InstrumentedCipher,
    InstrumentedMAC,
    maybe_instrument_aead,
    maybe_instrument_cipher,
    maybe_instrument_mac,
    timed,
)
from repro.observability.metrics import (
    REGISTRY,
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.observability.trace import TRACER, Span, Tracer


def enable() -> None:
    """Turn metric collection and tracing on (idempotent)."""
    REGISTRY.enable()


def disable() -> None:
    """Turn metric collection and tracing off (idempotent)."""
    REGISTRY.disable()


def enabled() -> bool:
    return REGISTRY.enabled


def reset() -> None:
    """Zero all metrics and drop all finished spans."""
    REGISTRY.reset()
    TRACER.reset()


__all__ = [
    "REGISTRY",
    "TRACER",
    "Counter",
    "Histogram",
    "InstrumentedAEAD",
    "InstrumentedCipher",
    "InstrumentedMAC",
    "MetricsRegistry",
    "Span",
    "Timer",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "maybe_instrument_aead",
    "maybe_instrument_cipher",
    "maybe_instrument_mac",
    "reset",
    "timed",
]
