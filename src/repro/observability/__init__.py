"""Observability: metrics, tracing, and instrumentation hooks.

Off by default.  Typical benchmark usage::

    from repro import observability

    observability.enable()        # before constructing the database
    db = EncryptedDatabase(key, config)   # primitives get instrumented
    ...                                   # run the workload
    print(observability.REGISTRY.snapshot())
    observability.disable()

See ``docs/observability.md`` for the metric catalogue and
``docs/audit.md`` for the security-event audit log built on top.
"""

from repro.observability.audit import (
    AUDIT,
    AuditError,
    AuditLog,
    canonical_lines,
    maybe_audit_cell_codec,
    maybe_audit_index_codec,
    maybe_audit_mac,
    read_events,
    write_events,
)
from repro.observability.export import (
    render_jsonl,
    render_prometheus,
    render_prometheus_samples,
    render_series_jsonl,
    series_dropped_samples,
    write_snapshot,
)
from repro.observability.flightrecorder import (
    GATED_CLASSES,
    RECORDER,
    FlightRecorder,
    load_flight,
    validate_flight_report,
    write_flight,
)
from repro.observability.health import (
    Alert,
    BaselineP99Rule,
    DeltaRule,
    HealthEngine,
    LeakBudgetRule,
    Rule,
    SloBurnRule,
    ThresholdRule,
    default_rules,
    load_rules,
    parse_rule,
)
from repro.observability.instrument import (
    InstrumentedAEAD,
    InstrumentedCipher,
    InstrumentedMAC,
    maybe_instrument_aead,
    maybe_instrument_cipher,
    maybe_instrument_mac,
    timed,
)
from repro.observability.metrics import (
    REGISTRY,
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.observability.leakmon import PROBES, LeakMonitor, run_live_profile
from repro.observability.monitor import (
    run_monitor,
    validate_health_report,
    write_health,
)
from repro.observability.profile import (
    OperatorStats,
    QueryProfile,
    build_query_profiles,
    format_profile,
)
from repro.observability.runmeta import git_describe, run_metadata
from repro.observability.timeseries import (
    HUB,
    Series,
    TelemetryHub,
    scheme_label,
)
from repro.observability.trace import TRACER, Span, TraceContext, Tracer
from repro.observability.traceexport import (
    chrome_trace_document,
    render_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def enable() -> None:
    """Turn metric collection and tracing on (idempotent)."""
    REGISTRY.enable()


def disable() -> None:
    """Turn metric collection and tracing off (idempotent)."""
    REGISTRY.disable()


def enabled() -> bool:
    return REGISTRY.enabled


def reset() -> None:
    """Zero all metrics and drop all finished spans."""
    REGISTRY.reset()
    TRACER.reset()


__all__ = [
    "AUDIT",
    "GATED_CLASSES",
    "HUB",
    "PROBES",
    "RECORDER",
    "REGISTRY",
    "TRACER",
    "Alert",
    "AuditError",
    "AuditLog",
    "FlightRecorder",
    "BaselineP99Rule",
    "Counter",
    "DeltaRule",
    "HealthEngine",
    "Histogram",
    "LeakBudgetRule",
    "InstrumentedAEAD",
    "InstrumentedCipher",
    "InstrumentedMAC",
    "LeakMonitor",
    "MetricsRegistry",
    "OperatorStats",
    "QueryProfile",
    "Rule",
    "Series",
    "SloBurnRule",
    "Span",
    "TelemetryHub",
    "ThresholdRule",
    "Timer",
    "TraceContext",
    "Tracer",
    "build_query_profiles",
    "canonical_lines",
    "chrome_trace_document",
    "default_rules",
    "disable",
    "enable",
    "enabled",
    "format_profile",
    "git_describe",
    "load_flight",
    "load_rules",
    "maybe_audit_cell_codec",
    "maybe_audit_index_codec",
    "maybe_audit_mac",
    "maybe_instrument_aead",
    "maybe_instrument_cipher",
    "maybe_instrument_mac",
    "parse_rule",
    "read_events",
    "render_chrome_trace",
    "render_jsonl",
    "render_prometheus",
    "render_prometheus_samples",
    "render_series_jsonl",
    "reset",
    "run_live_profile",
    "run_metadata",
    "run_monitor",
    "scheme_label",
    "series_dropped_samples",
    "timed",
    "validate_chrome_trace",
    "validate_flight_report",
    "validate_health_report",
    "write_chrome_trace",
    "write_events",
    "write_flight",
    "write_health",
    "write_snapshot",
]
