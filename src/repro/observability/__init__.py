"""Observability: metrics, tracing, and instrumentation hooks.

Off by default.  Typical benchmark usage::

    from repro import observability

    observability.enable()        # before constructing the database
    db = EncryptedDatabase(key, config)   # primitives get instrumented
    ...                                   # run the workload
    print(observability.REGISTRY.snapshot())
    observability.disable()

See ``docs/observability.md`` for the metric catalogue and
``docs/audit.md`` for the security-event audit log built on top.
"""

from repro.observability.audit import (
    AUDIT,
    AuditError,
    AuditLog,
    canonical_lines,
    maybe_audit_cell_codec,
    maybe_audit_index_codec,
    maybe_audit_mac,
    read_events,
    write_events,
)
from repro.observability.export import (
    render_jsonl,
    render_prometheus,
    write_snapshot,
)
from repro.observability.instrument import (
    InstrumentedAEAD,
    InstrumentedCipher,
    InstrumentedMAC,
    maybe_instrument_aead,
    maybe_instrument_cipher,
    maybe_instrument_mac,
    timed,
)
from repro.observability.metrics import (
    REGISTRY,
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
)
from repro.observability.leakmon import PROBES, LeakMonitor, run_live_profile
from repro.observability.profile import (
    OperatorStats,
    QueryProfile,
    build_query_profiles,
    format_profile,
)
from repro.observability.runmeta import git_describe, run_metadata
from repro.observability.trace import TRACER, Span, TraceContext, Tracer
from repro.observability.traceexport import (
    chrome_trace_document,
    render_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def enable() -> None:
    """Turn metric collection and tracing on (idempotent)."""
    REGISTRY.enable()


def disable() -> None:
    """Turn metric collection and tracing off (idempotent)."""
    REGISTRY.disable()


def enabled() -> bool:
    return REGISTRY.enabled


def reset() -> None:
    """Zero all metrics and drop all finished spans."""
    REGISTRY.reset()
    TRACER.reset()


__all__ = [
    "AUDIT",
    "PROBES",
    "REGISTRY",
    "TRACER",
    "AuditError",
    "AuditLog",
    "Counter",
    "Histogram",
    "InstrumentedAEAD",
    "InstrumentedCipher",
    "InstrumentedMAC",
    "LeakMonitor",
    "MetricsRegistry",
    "OperatorStats",
    "QueryProfile",
    "Span",
    "Timer",
    "TraceContext",
    "Tracer",
    "build_query_profiles",
    "canonical_lines",
    "chrome_trace_document",
    "disable",
    "enable",
    "enabled",
    "format_profile",
    "git_describe",
    "maybe_audit_cell_codec",
    "maybe_audit_index_codec",
    "maybe_audit_mac",
    "maybe_instrument_aead",
    "maybe_instrument_cipher",
    "maybe_instrument_mac",
    "read_events",
    "render_chrome_trace",
    "render_jsonl",
    "render_prometheus",
    "reset",
    "run_live_profile",
    "run_metadata",
    "timed",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_events",
    "write_snapshot",
]
