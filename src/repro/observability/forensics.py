"""Incident forensics over flight-recorder dumps.

A ``FLIGHT.json`` (:mod:`repro.observability.flightrecorder`) is a raw
record stream; this module turns it into answers:

* :func:`build_timeline` — the causally ordered incident timeline: every
  record in logical-tick order, with each anomaly (health alert, typed
  error, detection, false positive) attributed to a root cause — the
  injection it traces back to (replica id, blob, config, epoch) and the
  nearest preceding WAL-truncation offset;
* :func:`build_scorecard` — the detection scorecard: ground-truth
  ``fault`` records joined against detector records to report, per fault
  class, how many faults were injected, how many were *detectable* (not
  resolved away before any detector could see them), how many were
  detected, the detection latency in ticks, and every false positive (a
  detection with no matching open injection);
* :func:`scorecard_gate` — the CI gate: 100 % detection for the
  MAC-covered classes (:data:`~repro.observability.flightrecorder.GATED_CLASSES`)
  and zero false positives.

The join rules, chosen so honest redundancy never reads as noise:

1. records are processed in ``seq`` order;
2. a detection closes the **oldest open injection** of its class whose
   shared fields (``blob``, ``replica``, ``config``, ``seed``,
   ``scope``, ``mode``, ``op_index``, ``crash``, ``rollback``) all
   agree — fields present on only one side are ignored, so a trust
   anchor's ``scope``-keyed rollback detection still matches a
   campaign-keyed rollback injection;
3. detection latency is the tick delta from injection to first
   detection; later detections matching an already-closed injection are
   *duplicates* (a second shard tripping the same rollback), never
   false positives;
4. a ``resolved`` record removes a **still-open** injection from the
   detectable denominator (a corruption read-repaired or
   freshness-healed before a MAC verdict graded it); resolving an
   already-detected injection is a no-op, so belated sweeps are safe;
5. a detection matching nothing — open or closed — is a false positive.

The module also ships the two reference drivers behind
``repro forensics``: :func:`run_chaos_flight` (the chaos campaign plus a
control keyspace that guarantees every gated class is exercised) and
:func:`run_healthy_flight` (a fault-free monitored run that must produce
zero incidents).
"""

from __future__ import annotations

from repro.observability.flightrecorder import (
    GATED_CLASSES,
    RECORDER,
    load_flight,
    write_flight,
)

#: Fields compared when joining a detection to an injection; a field
#: missing on either side does not constrain the match.
MATCH_FIELDS = (
    "blob",
    "replica",
    "config",
    "seed",
    "scope",
    "shard",
    "mode",
    "op_index",
    "crash",
    "rollback",
)


def _fields_match(injection: dict, detection: dict) -> bool:
    for key in MATCH_FIELDS:
        if key in injection and key in detection and injection[key] != detection[key]:
            return False
    return True


def _oldest_match(candidates, fault_class: str, detection_fields: dict):
    for record in candidates:
        fields = record["fields"]
        if fields["class"] == fault_class and _fields_match(
            fields, detection_fields
        ):
            return record
    return None


def _class_entry() -> dict:
    return {
        "injected": 0,
        "detected": 0,
        "resolved": 0,
        "duplicates": 0,
        "latencies": [],
    }


def build_scorecard(source) -> dict:
    """Join ground-truth fault records into the per-class scorecard.

    ``source`` is a flight document (or a raw record list).  Returns the
    JSON-ready scorecard with per-class counts, detection rate over the
    detectable denominator, latency stats in ticks, the false-positive
    list, and ``ok`` (the ungated verdict — see :func:`scorecard_gate`
    for the CI gate with required classes).
    """
    records = source["records"] if isinstance(source, dict) else list(source)
    faults = sorted(
        (r for r in records if r.get("channel") == "fault"),
        key=lambda r: r["seq"],
    )
    classes: dict[str, dict] = {}
    open_by_id: dict[str, dict] = {}
    closed: list[dict] = []
    false_positives: list[dict] = []
    matches: dict[int, dict] = {}  # detection seq -> matched injection

    for record in faults:
        kind = record["kind"]
        fields = record["fields"]
        if kind == "injection":
            classes.setdefault(fields["class"], _class_entry())["injected"] += 1
            open_by_id[fields["id"]] = record
        elif kind == "resolved":
            injection = open_by_id.pop(fields["id"], None)
            if injection is not None:
                classes[injection["fields"]["class"]]["resolved"] += 1
        elif kind == "detection":
            fault_class = fields["class"]
            entry = classes.setdefault(fault_class, _class_entry())
            injection = _oldest_match(open_by_id.values(), fault_class, fields)
            if injection is not None:
                del open_by_id[injection["fields"]["id"]]
                closed.append(injection)
                matches[record["seq"]] = injection
                entry["detected"] += 1
                entry["latencies"].append(record["tick"] - injection["tick"])
            elif _oldest_match(closed, fault_class, fields) is not None:
                entry["duplicates"] += 1
                matches[record["seq"]] = _oldest_match(
                    closed, fault_class, fields
                )
            else:
                false_positives.append(
                    {"seq": record["seq"], "tick": record["tick"], **fields}
                )

    report: dict = {"classes": {}, "false_positives": false_positives}
    for fault_class in sorted(classes):
        entry = classes[fault_class]
        detectable = entry["injected"] - entry["resolved"]
        latencies = entry["latencies"]
        report["classes"][fault_class] = {
            "injected": entry["injected"],
            "resolved": entry["resolved"],
            "detectable": detectable,
            "detected": entry["detected"],
            "open": detectable - entry["detected"],
            "duplicates": entry["duplicates"],
            "rate": (entry["detected"] / detectable) if detectable else None,
            "latency": (
                {
                    "min": min(latencies),
                    "max": max(latencies),
                    "mean": sum(latencies) / len(latencies),
                }
                if latencies
                else None
            ),
        }
    report["gated"] = list(GATED_CLASSES)
    report["ok"] = not scorecard_gate(report)
    report["_matches"] = matches  # internal: consumed by build_timeline
    return report


def scorecard_gate(scorecard: dict, require: tuple = ()) -> list[str]:
    """CI-gate problems with a scorecard; empty means the gate passes.

    Every gated class that was detectable must have been detected 100 %
    of the time, and no false positive may exist.  ``require`` lists
    classes that must additionally have a *non-zero* detectable count —
    the chaos driver's controls guarantee this, so a gate that silently
    graded nothing cannot pass.
    """
    problems = []
    for fault_class in GATED_CLASSES:
        entry = scorecard["classes"].get(fault_class)
        if entry is None:
            continue
        if entry["detectable"] > 0 and entry["rate"] != 1.0:
            problems.append(
                f"{fault_class}: detected {entry['detected']} of "
                f"{entry['detectable']} detectable injection(s)"
            )
    for fp in scorecard["false_positives"]:
        problems.append(
            f"false positive: {fp['class']} detection at tick {fp['tick']} "
            f"matches no injection"
        )
    for fault_class in require:
        entry = scorecard["classes"].get(fault_class)
        if entry is None or entry["detectable"] == 0:
            problems.append(
                f"{fault_class}: no detectable injection exercised the gate"
            )
    return problems


# -- the timeline ------------------------------------------------------------


_ANOMALY = ("alert", "error")


def _summary(record: dict) -> str:
    fields = record["fields"]
    parts = [f"{k}={fields[k]}" for k in sorted(fields) if k != "class"]
    label = record["kind"]
    if "class" in fields:
        label = f"{record['kind']}:{fields['class']}"
    return f"{label} " + " ".join(parts) if parts else label


def build_timeline(doc: dict) -> list[dict]:
    """The causally ordered incident timeline with root-cause links.

    One entry per record, in ``seq`` (and therefore tick) order.  Each
    detection carries the injection it closed; each alert or error is
    attributed to the nearest preceding injection and the nearest
    preceding WAL-truncation note (offset attribution), when they exist.
    """
    scorecard = build_scorecard(doc)
    matches = scorecard["_matches"]
    timeline = []
    last_injection: dict | None = None
    last_wal_offset = None
    for record in sorted(doc["records"], key=lambda r: r["seq"]):
        fields = record["fields"]
        if record["channel"] == "fault" and record["kind"] == "injection":
            last_injection = record
        if record["channel"] == "note" and record["kind"] == "wal.truncated":
            last_wal_offset = fields.get("offset")
        entry = {
            "seq": record["seq"],
            "tick": record["tick"],
            "channel": record["channel"],
            "summary": _summary(record),
        }
        cause = None
        if record["channel"] == "fault" and record["kind"] == "detection":
            injection = matches.get(record["seq"])
            if injection is not None:
                cause = {
                    "injection": injection["fields"]["id"],
                    "class": injection["fields"]["class"],
                    **{
                        k: injection["fields"][k]
                        for k in MATCH_FIELDS
                        if k in injection["fields"]
                    },
                }
            else:
                entry["false_positive"] = True
        elif record["channel"] in _ANOMALY and last_injection is not None:
            cause = {
                "injection": last_injection["fields"]["id"],
                "class": last_injection["fields"]["class"],
                "nearest": True,
            }
        if cause is not None:
            if last_wal_offset is not None:
                cause["wal_offset"] = last_wal_offset
            entry["cause"] = cause
        timeline.append(entry)
    return timeline


# -- renderers ---------------------------------------------------------------


def render_scorecard(scorecard: dict) -> str:
    lines = ["detection scorecard"]
    header = (
        f"  {'class':<14} {'injected':>8} {'resolved':>8} {'detectable':>10} "
        f"{'detected':>8} {'rate':>6} {'latency':>9}"
    )
    lines.append(header)
    for fault_class, entry in scorecard["classes"].items():
        rate = "n/a" if entry["rate"] is None else f"{entry['rate']:.0%}"
        if entry["latency"] is None:
            latency = "n/a"
        else:
            latency = f"{entry['latency']['min']}-{entry['latency']['max']}t"
        gated = "*" if fault_class in scorecard["gated"] else " "
        lines.append(
            f" {gated}{fault_class:<14} {entry['injected']:>8} "
            f"{entry['resolved']:>8} {entry['detectable']:>10} "
            f"{entry['detected']:>8} {rate:>6} {latency:>9}"
        )
    lines.append(
        f"  false positives: {len(scorecard['false_positives'])}"
        f"  (* = CI-gated class)"
    )
    for fp in scorecard["false_positives"]:
        lines.append(f"    tick {fp['tick']}: {fp['class']} ({fp})")
    return "\n".join(lines)


def render_timeline(timeline: list[dict]) -> str:
    lines = ["incident timeline"]
    for entry in timeline:
        line = f"  t{entry['tick']:>5} [{entry['channel']:<9}] {entry['summary']}"
        cause = entry.get("cause")
        if cause is not None:
            details = [f"{k}={v}" for k, v in cause.items() if k != "nearest"]
            arrow = "~>" if cause.get("nearest") else "<-"
            line += f"  {arrow} " + " ".join(details)
        if entry.get("false_positive"):
            line += "  !! FALSE POSITIVE"
        lines.append(line)
    return "\n".join(lines)


def public_scorecard(scorecard: dict) -> dict:
    """The scorecard without internal bookkeeping (JSON-safe)."""
    return {k: v for k, v in scorecard.items() if not k.startswith("_")}


# -- reference drivers -------------------------------------------------------


def _flip_byte(disk, name: str) -> None:
    blob = bytearray(disk.read(name))
    blob[len(blob) // 2] ^= 0xA5
    disk.write(name, bytes(blob))
    disk.sync(name)


def _run_controls(config_label: str, config) -> None:
    """Exercise every gated fault class once, with guaranteed verdicts.

    The weighted chaos schedule cannot promise a MAC-invalid corruption
    or a lockstep rollback on every seed, so the driver appends a small
    control keyspace (one shard, three bare replicas) where each gated
    class is injected in its most detectable form: a rollback past an
    advanced trust anchor, a bit flip in the manifest of one replica
    (its decode MAC-rejects any flip), and a bit flip in the shard
    checkpoint of *every* replica (no authentic copy can survive).
    """
    from repro.core.keys import KeyChain
    from repro.durability.crashcampaign import _CRASH_MASTER_KEY, _row_values
    from repro.durability.vdisk import MemoryDisk
    from repro.errors import StaleImageError
    from repro.resilience.anchor import MemoryAnchor
    from repro.resilience.replica import MirroredDisk
    from repro.resilience.scrub import scrub_keyspace
    from repro.sharding.campaign import _seed_keyspace
    from repro.sharding.keyspace import ShardedKeyspace
    from repro.sharding.manifest import MANIFEST_BLOB

    chain = KeyChain.single(_CRASH_MASTER_KEY)
    anchor = MemoryAnchor()
    bases = [MemoryDisk() for _ in range(3)]

    def mount() -> ShardedKeyspace:
        return ShardedKeyspace.open(
            MirroredDisk(bases),
            chain,
            config,
            shard_count=1,
            workers=1,
            anchor=anchor,
        )

    RECORDER.note("control.start", config=config_label)
    keyspace = mount()
    _seed_keyspace(keyspace, 2)
    stale = [base.durable_state() for base in bases]
    for i in (2, 3):
        keyspace.insert("people", _row_values(i))
    keyspace.checkpoint()  # the anchor is now ahead of ``stale``
    current = [base.durable_state() for base in bases]

    # Control 1: lockstep rollback — every replica rewound to the stale
    # snapshot; the next mount must trip the trust anchor.
    RECORDER.tick()
    RECORDER.record_injection("rollback", config=config_label, control=True)
    bases = [MemoryDisk(dict(state)) for state in stale]
    try:
        mount()
    except StaleImageError:
        pass  # the anchor's raise recorded the detection
    bases = [MemoryDisk(dict(state)) for state in current]
    mount()

    # Control 2: MAC-covered tamper — one replica's manifest bit-flipped
    # (the manifest decode MAC-rejects any flip, so the scrub verdict is
    # guaranteed MAC-invalid, not a freshness heal).
    RECORDER.tick()
    RECORDER.record_injection(
        "tamper",
        blob=MANIFEST_BLOB,
        replica=0,
        mode="bitflip",
        config=config_label,
        control=True,
    )
    _flip_byte(bases[0], MANIFEST_BLOB)

    # Control 3: unrepairable — the shard checkpoint bit-flipped on
    # *every* replica; no authentic copy survives anywhere.
    RECORDER.tick()
    RECORDER.record_injection(
        "unrepairable", blob="s0.checkpoint", config=config_label, control=True
    )
    for base in bases:
        _flip_byte(base, "s0.checkpoint")

    RECORDER.tick()
    scrub_keyspace(MirroredDisk(bases), chain)
    RECORDER.note("control.end", config=config_label)


def run_chaos_flight(
    steps: int = 24,
    seed: int = 0,
    configs=None,
    shard_count: int = 2,
    replicas: int = 3,
    flaky: bool = True,
    meta: dict | None = None,
    out=None,
):
    """The scorecard reference run: chaos campaign + gated controls.

    Resets the recorder, runs the seeded chaos campaign, appends the
    control keyspace (so every gated class has a non-zero detectable
    count), and snapshots the flight document.  Returns
    ``(campaign, flight_doc, scorecard)``; the caller gates on
    :func:`scorecard_gate` with ``require=GATED_CLASSES``.
    """
    from repro.resilience.chaos import run_chaos_campaign
    from repro.robustness.campaign import default_campaign_configs

    configs = configs if configs is not None else default_campaign_configs()
    RECORDER.reset()
    campaign = run_chaos_campaign(
        steps=steps,
        seed=seed,
        shard_count=shard_count,
        replicas=replicas,
        flaky=flaky,
        configs=configs,
    )
    control_label, control_config = configs[0]
    _run_controls(control_label, control_config)
    doc = RECORDER.snapshot(reason="chaos-campaign", meta=meta)
    if out is not None:
        write_flight(doc, out)
    scorecard = build_scorecard(doc)
    return campaign, doc, scorecard


def run_healthy_flight(
    scenario: str = "point_query",
    quick: bool = True,
    inject: tuple = (),
    limit: int | None = None,
    meta: dict | None = None,
    out=None,
):
    """The false-alarm control: a monitored run with no injected faults
    must produce zero incidents (no alerts, no unmatched detections, no
    open gated injections).  Returns ``(health_doc, flight_doc,
    incidents)``; ``inject`` passes monitor fault injections through, in
    which case incidents are *expected*.
    """
    from repro.observability.monitor import run_monitor

    RECORDER.reset()
    health = run_monitor(
        scenario=scenario, quick=quick, inject=list(inject), limit=limit
    )
    doc = RECORDER.snapshot(reason="healthy-run", meta=meta)
    if out is not None:
        write_flight(doc, out)
    return health, doc, flight_incidents(doc)


def flight_incidents(doc: dict) -> list[str]:
    """Every incident in a flight document, as human-readable strings:
    health alerts, typed errors, false-positive detections, and open
    gated injections."""
    incidents = []
    for record in doc["records"]:
        if record["channel"] == "alert":
            incidents.append(
                f"alert {record['kind']} at tick {record['tick']}: "
                f"{record['fields'].get('message', '')}"
            )
        elif record["channel"] == "error":
            incidents.append(
                f"error {record['kind']} at tick {record['tick']}: "
                f"{record['fields'].get('message', '')}"
            )
    scorecard = build_scorecard(doc)
    incidents.extend(scorecard_gate(scorecard))
    return incidents


def load_and_grade(path) -> tuple[dict, dict]:
    """Load one ``FLIGHT.json`` and build its scorecard (CLI helper)."""
    doc = load_flight(path)
    return doc, build_scorecard(doc)
