"""The flight recorder: an always-on black box for incident forensics.

Every other observability layer is *opt-in* (metrics, audit, telemetry
all default to off) because they exist to answer questions the operator
already decided to ask.  Incidents do not wait for that decision: when a
mount raises :class:`~repro.errors.StaleImageError` or a scrub reports
an unrepairable blob, the question "what happened in the minutes before"
can only be answered if someone was already listening.  The
:class:`FlightRecorder` is that listener — a bounded ring of structured
records that is **always on**, costs one lock + deque append per event,
holds no unbounded state, and can serialise itself to a schema-validated
``FLIGHT.json`` (``repro-flight/1``) at any moment.

Records arrive on six channels:

* ``audit`` — every security audit event (forwarded by
  :meth:`~repro.observability.audit.AuditLog.emit` whenever the audit
  log is enabled), with the wall-clock ``ts`` stripped so dumps stay
  deterministic;
* ``telemetry`` — one record per telemetry-hub tick, keeping the
  recorder's clock aligned with the hub's;
* ``alert`` — every health alert the
  :class:`~repro.observability.health.HealthEngine` fires;
* ``fault`` — the ground-truth channel: typed **injection** records
  emitted by the chaos/crash/fault campaigns, **detection** records
  emitted by the production detectors (scrubber MAC verdicts, trust
  anchors), and **resolved** records when an injected fault was healed
  or overwritten before any detector could see it;
* ``error`` — typed :class:`~repro.errors.ReproError` captures;
* ``note`` — contextual breadcrumbs (WAL replay outcomes, read-repairs,
  freshness heals) that anchor forensic attribution without being
  graded signals themselves.

Time is the recorder's own **logical tick** — advanced explicitly by
campaign schedulers and implicitly by telemetry-hub ticks — so detection
latencies are stated in ticks and two seeded runs dump byte-identical
documents.  The ring respects ``capacity`` exactly: overflow evicts the
oldest record and counts the eviction against the *evicted record's*
channel, so a dump always states precisely what it no longer knows.

This module imports nothing from the rest of the package (stdlib only):
it sits below ``audit``/``timeseries``/``health`` in the import graph so
the lowest layers (trust anchors, replica sets, the scrubber) can report
to it without cycles.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path

FLIGHT_SCHEMA = "repro-flight/1"

#: Records retained in the ring; evictions beyond this are counted per
#: channel, never hidden.
DEFAULT_CAPACITY = 4096

#: Every channel a record may arrive on.
CHANNELS = ("audit", "telemetry", "alert", "fault", "error", "note")

#: The fault-record kinds carried on the ``fault`` channel.
FAULT_KINDS = ("injection", "detection", "resolved")

#: Ground-truth fault classes the campaigns inject.
CLASS_TAMPER = "tamper"  # MAC-covered single-replica corruption
CLASS_ROLLBACK = "rollback"  # lockstep restore of an earlier snapshot
CLASS_UNREPAIRABLE = "unrepairable"  # no authentic replica copy left
CLASS_CRASH = "crash"  # whole-host power cut + remount
CLASS_STORAGE_FAULT = "storage-fault"  # robustness-campaign image fault

#: Classes whose detection the CI scorecard gates at 100 %: the AEAD/MAC
#: machinery makes these detectable *by construction*, so anything short
#: of full detection is a regression.  ``crash`` and ``storage-fault``
#: are reported but not gated — the broken [3]/[12] schemes corrupt
#: silently by design, which is the paper's point, not a bug.
GATED_CLASSES = (CLASS_TAMPER, CLASS_ROLLBACK, CLASS_UNREPAIRABLE)


def _jsonable(value):
    """Coerce one field value to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, Path):
        return str(value)
    return repr(value)


class FlightRecorder:
    """A bounded, logical-clock ring of structured incident records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._records: deque[dict] = deque()
        self.dropped: dict[str, int] = {}
        self._seq = 0
        self._tick = 0
        self._injections = 0
        self._armed_path: Path | None = None
        self.dumps_written = 0

    # -- the logical clock ---------------------------------------------------

    @property
    def current_tick(self) -> int:
        return self._tick

    def tick(self) -> int:
        """Advance the recorder's clock (campaign event boundaries)."""
        with self._lock:
            self._tick += 1
            return self._tick

    # -- recording -----------------------------------------------------------

    def record(self, channel: str, kind: str, **fields) -> dict:
        """Append one record; evict (and account) the oldest on overflow."""
        if channel not in CHANNELS:
            raise ValueError(f"unknown channel {channel!r}")
        with self._lock:
            self._seq += 1
            entry = {
                "seq": self._seq,
                "tick": self._tick,
                "channel": channel,
                "kind": kind,
                "fields": {str(k): _jsonable(v) for k, v in fields.items()},
            }
            if len(self._records) == self.capacity:
                evicted = self._records.popleft()
                bucket = evicted["channel"]
                self.dropped[bucket] = self.dropped.get(bucket, 0) + 1
            self._records.append(entry)
            return entry

    def note(self, kind: str, **fields) -> None:
        """A contextual breadcrumb: timeline evidence, not a graded signal."""
        self.record("note", kind, **fields)

    def record_audit(self, event: dict) -> None:
        """Mirror one audit event (called by ``AuditLog.emit``); the
        wall-clock ``ts`` is stripped so dumps stay deterministic."""
        fields = {k: v for k, v in event.items() if k not in ("kind", "ts", "seq")}
        fields["audit_seq"] = event.get("seq")
        self.record("audit", event["kind"], **fields)

    def record_hub_tick(self, hub_tick: int, series_count: int) -> None:
        """Mirror one telemetry tick and advance the recorder clock with it."""
        with self._lock:
            self._tick += 1
        self.record(
            "telemetry", "hub.tick", hub_tick=hub_tick, series=series_count
        )

    def record_alert(self, alert: dict) -> None:
        """Record one fired health alert; dumps immediately when armed."""
        fields = dict(alert)
        rule = str(fields.pop("rule", "unknown"))
        self.record("alert", rule, **fields)
        self._maybe_dump(f"alert:{rule}")

    def record_error(self, exc: BaseException) -> None:
        """Record one typed error; dumps immediately when armed."""
        kind = type(exc).__name__
        fields = {"message": str(exc)}
        for key, value in vars(exc).items():
            if isinstance(value, (str, int, float, bool)) or value is None:
                fields[key] = value
        self.record("error", kind, **fields)
        self._maybe_dump(f"error:{kind}")

    # -- ground truth --------------------------------------------------------

    def record_injection(self, fault_class: str, **context) -> str:
        """Record one ground-truth fault injection; returns its id."""
        with self._lock:
            self._injections += 1
            injection_id = f"inj-{self._injections}"
        self.record(
            "fault", "injection", id=injection_id, **{"class": fault_class}, **context
        )
        return injection_id

    def record_detection(self, fault_class: str, **context) -> None:
        """Record one detector firing (scrub MAC verdict, trust anchor…)."""
        self.record("fault", "detection", **{"class": fault_class}, **context)

    def resolve_injection(self, injection_id: str, reason: str, **context) -> None:
        """Record that an injected fault stopped being detectable — it
        was overwritten by a legitimate write or healed by a vote before
        any MAC-level detector saw it.  The forensic join drops resolved
        injections from the detectable denominator (unless a detection
        already closed them, in which case the resolution is ignored)."""
        self.record("fault", "resolved", id=injection_id, reason=reason, **context)

    # -- dump triggers -------------------------------------------------------

    def arm(self, path: str | Path) -> None:
        """Dump to ``path`` the moment any alert or typed error lands."""
        self._armed_path = Path(path)

    def disarm(self) -> None:
        self._armed_path = None

    def _maybe_dump(self, reason: str) -> None:
        if self._armed_path is not None:
            self.dump(self._armed_path, reason=reason)

    # -- introspection -------------------------------------------------------

    def records(self, channel: str | None = None) -> list[dict]:
        with self._lock:
            entries = list(self._records)
        if channel is None:
            return entries
        return [entry for entry in entries if entry["channel"] == channel]

    def reset(self) -> None:
        """Forget everything: records, drops, clocks, the armed path."""
        with self._lock:
            self._records.clear()
            self.dropped = {}
            self._seq = 0
            self._tick = 0
            self._injections = 0
            self._armed_path = None
            self.dumps_written = 0

    # -- the dump ------------------------------------------------------------

    def snapshot(self, reason: str = "explicit", meta: dict | None = None) -> dict:
        """The full ``repro-flight/1`` document, JSON-ready."""
        from repro.observability.trace import TRACER  # leaf module; cold path

        finished = TRACER.finished()
        by_name: dict[str, int] = {}
        for span in finished:
            by_name[span.name] = by_name.get(span.name, 0) + 1
        with self._lock:
            records = list(self._records)
            doc = {
                "schema": FLIGHT_SCHEMA,
                "reason": reason,
                "ticks": self._tick,
                "capacity": self.capacity,
                "dropped": dict(sorted(self.dropped.items())),
                "records": records,
                "spans": {
                    "finished": len(finished),
                    "dropped": TRACER.dropped,
                    "by_name": dict(sorted(by_name.items())),
                },
            }
        if meta is not None:
            doc["meta"] = meta
        return doc

    def dump(
        self,
        path: str | Path,
        reason: str = "explicit",
        meta: dict | None = None,
    ) -> dict:
        """Snapshot and write ``FLIGHT.json``; returns the document."""
        doc = self.snapshot(reason=reason, meta=meta)
        write_flight(doc, path)
        with self._lock:
            self.dumps_written += 1
        return doc


# -- document plumbing -------------------------------------------------------


def validate_flight_report(doc: dict) -> list[str]:
    """Structural checks on a flight document; returns problem strings."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["flight document is not an object"]
    if doc.get("schema") != FLIGHT_SCHEMA:
        problems.append(f"schema is {doc.get('schema')!r}, expected {FLIGHT_SCHEMA!r}")
    if not isinstance(doc.get("reason"), str) or not doc.get("reason"):
        problems.append("reason must be a non-empty string")
    ticks = doc.get("ticks")
    if not isinstance(ticks, int) or ticks < 0:
        problems.append("ticks must be a non-negative integer")
    capacity = doc.get("capacity")
    if not isinstance(capacity, int) or capacity < 1:
        problems.append("capacity must be a positive integer")
    dropped = doc.get("dropped")
    if not isinstance(dropped, dict):
        problems.append("dropped must be an object")
    else:
        for channel, count in dropped.items():
            if channel not in CHANNELS:
                problems.append(f"dropped names unknown channel {channel!r}")
            if not isinstance(count, int) or count < 0:
                problems.append(f"dropped[{channel!r}] must be a non-negative int")
    spans = doc.get("spans")
    if not isinstance(spans, dict):
        problems.append("spans must be an object")
    else:
        for key in ("finished", "dropped"):
            if not isinstance(spans.get(key), int) or spans.get(key, -1) < 0:
                problems.append(f"spans.{key} must be a non-negative integer")
        if not isinstance(spans.get("by_name"), dict):
            problems.append("spans.by_name must be an object")
    records = doc.get("records")
    if not isinstance(records, list):
        problems.append("records must be an array")
        return problems
    last_seq = 0
    last_tick = -1
    for i, entry in enumerate(records):
        where = f"records[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} is not an object")
            continue
        seq = entry.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            problems.append(f"{where}: seq must increase strictly")
        else:
            last_seq = seq
        tick = entry.get("tick")
        if not isinstance(tick, int) or tick < 0:
            problems.append(f"{where}: tick must be a non-negative integer")
        elif tick < last_tick:
            problems.append(f"{where}: tick moved backwards")
        else:
            last_tick = tick
        if entry.get("channel") not in CHANNELS:
            problems.append(f"{where}: unknown channel {entry.get('channel')!r}")
        if not isinstance(entry.get("kind"), str) or not entry.get("kind"):
            problems.append(f"{where}: kind must be a non-empty string")
        fields = entry.get("fields")
        if not isinstance(fields, dict):
            problems.append(f"{where}: fields must be an object")
            continue
        if entry.get("channel") == "fault":
            kind = entry.get("kind")
            if kind not in FAULT_KINDS:
                problems.append(f"{where}: fault kind {kind!r} not in {FAULT_KINDS}")
                continue
            if kind in ("injection", "detection") and not fields.get("class"):
                problems.append(f"{where}: fault {kind} needs a class")
            if kind in ("injection", "resolved") and not fields.get("id"):
                problems.append(f"{where}: fault {kind} needs an id")
    return problems


def write_flight(doc: dict, path: str | Path) -> Path:
    """Validate and write one flight document (sorted keys, trailing
    newline); an invalid document refuses to hit the disk."""
    problems = validate_flight_report(doc)
    if problems:
        raise ValueError(
            "refusing to write an invalid flight report: " + "; ".join(problems)
        )
    target = Path(path)
    target.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
    return target


def load_flight(path: str | Path) -> dict:
    """Read and validate one flight document."""
    target = Path(path)
    try:
        doc = json.loads(target.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read flight report {target}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"{target} is not JSON: {exc}") from None
    problems = validate_flight_report(doc)
    if problems:
        raise ValueError(f"{target} is not a valid flight report: {problems[0]}")
    return doc


#: The process-wide black box every layer reports to.
RECORDER = FlightRecorder()
