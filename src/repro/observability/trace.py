"""Causal span tracing for query-path introspection and cost attribution.

A *span* is a named, timed region of execution carrying a
:class:`TraceContext` — trace id, span id, parent span id — so nested
spans form a tree rooted at the query entry point (Dapper-style causal
tracing).  One point query produces ``query.point`` over
``index.descent`` over per-cell ``cell.decrypt`` spans, and every
primitive invocation inside the tree is attributable to exactly one
root query span.

Besides wall time, spans accumulate *costs*: integer counters charged
to the innermost active span on the current thread via
:meth:`Tracer.add_cost`.  The instrumentation wrappers charge
``cipher_calls`` (measured blockcipher invocations, the Sect. 4 unit of
account) and ``cipher_calls_predicted`` (the analytic expectation from
the paper's formulas), which is what lets ``repro explain`` cross-check
the overhead model per query instead of per run.

The tracer stays zero-dependency and off by default: the disabled path
is a single boolean test returning a shared no-op span, and hot call
sites guard with ``if TRACER.enabled:`` so the disabled path allocates
nothing.  Finished spans live in a bounded ring — benchmark runs are
long, and tracing must never become the memory hog it is meant to
find; evictions are counted in the ``trace.spans_dropped`` metric
rather than dropped silently.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass

from repro.observability.metrics import REGISTRY, MetricsRegistry


@dataclass(frozen=True)
class TraceContext:
    """Causal identity of one span: which trace, which span, which parent."""

    trace_id: int
    span_id: int
    parent_id: int | None

    def child(self, span_id: int) -> "TraceContext":
        """The context a direct child span inherits."""
        return TraceContext(self.trace_id, span_id, self.span_id)


class Span:
    """One finished (or in-flight) traced region."""

    __slots__ = (
        "name",
        "attributes",
        "context",
        "costs",
        "thread_id",
        "start",
        "duration",
    )

    def __init__(self, name: str, attributes: dict, context: TraceContext) -> None:
        self.name = name
        self.attributes = attributes
        self.context = context
        self.costs: dict[str, int] = {}
        self.thread_id = threading.get_ident()
        self.start = time.perf_counter()
        self.duration: float | None = None

    @property
    def trace_id(self) -> int:
        return self.context.trace_id

    @property
    def span_id(self) -> int:
        return self.context.span_id

    @property
    def parent_id(self) -> int | None:
        return self.context.parent_id

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def add_cost(self, key: str, amount: int) -> None:
        self.costs[key] = self.costs.get(key, 0) + amount

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.context.parent_id,
            "thread_id": self.thread_id,
            "start_seconds": self.start,
            "duration_seconds": self.duration,
            "attributes": self.attributes,
            "costs": self.costs,
        }


class _NullSpan:
    """The span handed out while tracing is disabled: absorbs everything."""

    __slots__ = ()

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def add_cost(self, key: str, amount: int) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager pushing a real span on this thread's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def set_attribute(self, key: str, value: object) -> None:
        self._span.set_attribute(key, value)

    def add_cost(self, key: str, amount: int) -> None:
        self._span.add_cost(key, amount)

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._stack().append(self._span)
        return self

    def __exit__(self, *exc_info: object) -> None:
        stack = self._tracer._stack()
        if stack and stack[-1] is self._span:
            stack.pop()
        self._span.duration = time.perf_counter() - self._span.start
        self._tracer._record(self._span)


class Tracer:
    """Span factory bound to a :class:`MetricsRegistry`'s on/off switch."""

    def __init__(
        self, registry: MetricsRegistry | None = None, max_spans: int = 10_000
    ) -> None:
        self._registry = registry if registry is not None else REGISTRY
        self._max_spans = max_spans
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: list[Span] = []
        self._ids = itertools.count(1)
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def span(self, name: str, **attributes: object):
        """Open a span; use as ``with tracer.span("query.point") as s:``.

        A span opened with no active span on this thread roots a new
        trace; children inherit the trace id and link to their parent's
        span id, so concurrent queries on separate threads build
        disjoint trees.
        """
        if not self._registry.enabled:
            return _NULL_SPAN
        stack = self._stack()
        span_id = next(self._ids)
        if stack:
            context = stack[-1].context.child(span_id)
        else:
            context = TraceContext(next(self._ids), span_id, None)
        return _ActiveSpan(self, Span(name, dict(attributes), context))

    def current(self) -> Span | None:
        """The innermost active span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def add_cost(self, key: str, amount: int = 1) -> None:
        """Charge ``amount`` to this thread's innermost active span.

        Self-cost accounting: a parent's own total is the sum over its
        subtree, computed at read time by :mod:`repro.observability.profile`.
        No-op when tracing is disabled or no span is active; the call
        itself allocates nothing, but hot paths should still guard with
        ``if TRACER.enabled:`` to skip argument evaluation.
        """
        if not self._registry.enabled:
            return
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].add_cost(key, amount)

    def finished(self) -> list[Span]:
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
            self.dropped = 0

    def snapshot(self) -> list[dict]:
        return [span.to_dict() for span in self.finished()]

    # -- internals ----------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) >= self._max_spans:
                # Drop the oldest half in one go: O(1) amortised and the
                # recent spans (what a bench report reads) survive.
                evicted = self._max_spans // 2
                del self._finished[:evicted]
                self.dropped += evicted
                self._registry.counter("trace.spans_dropped").inc(evicted)
            self._finished.append(span)


#: The process-wide tracer, sharing the metrics registry's switch.
TRACER = Tracer(REGISTRY)
