"""Lightweight span tracing for query-path introspection.

A *span* is a named, timed region of execution; nested spans record
their parent, so one query produces a small tree: ``query.point`` over
``db.select_equals`` over per-cell decrypts.  Spans answer the question
metrics cannot — *where* inside one operation the time went — while
staying zero-dependency and off by default (the disabled path is a
single boolean test returning a shared no-op span).

The tracer keeps a bounded ring of finished spans: benchmark runs are
long, and tracing must never become the memory hog it is meant to find.
"""

from __future__ import annotations

import threading
import time

from repro.observability.metrics import REGISTRY, MetricsRegistry


class Span:
    """One finished (or in-flight) traced region."""

    __slots__ = ("name", "attributes", "start", "duration", "parent")

    def __init__(self, name: str, attributes: dict, parent: str | None) -> None:
        self.name = name
        self.attributes = attributes
        self.parent = parent
        self.start = time.perf_counter()
        self.duration: float | None = None

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "parent": self.parent,
            "duration_seconds": self.duration,
            "attributes": self.attributes,
        }


class _NullSpan:
    """The span handed out while tracing is disabled: absorbs everything."""

    __slots__ = ()

    def set_attribute(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager pushing a real span on this thread's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def set_attribute(self, key: str, value: object) -> None:
        self._span.set_attribute(key, value)

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._stack().append(self._span)
        return self

    def __exit__(self, *exc_info: object) -> None:
        stack = self._tracer._stack()
        if stack and stack[-1] is self._span:
            stack.pop()
        self._span.duration = time.perf_counter() - self._span.start
        self._tracer._record(self._span)


class Tracer:
    """Span factory bound to a :class:`MetricsRegistry`'s on/off switch."""

    def __init__(
        self, registry: MetricsRegistry | None = None, max_spans: int = 10_000
    ) -> None:
        self._registry = registry if registry is not None else REGISTRY
        self._max_spans = max_spans
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: list[Span] = []
        self.dropped = 0

    @property
    def enabled(self) -> bool:
        return self._registry.enabled

    def span(self, name: str, **attributes: object):
        """Open a span; use as ``with tracer.span("query.point") as s:``."""
        if not self._registry.enabled:
            return _NULL_SPAN
        stack = self._stack()
        parent = stack[-1].name if stack else None
        return _ActiveSpan(self, Span(name, dict(attributes), parent))

    def finished(self) -> list[Span]:
        with self._lock:
            return list(self._finished)

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
            self.dropped = 0

    def snapshot(self) -> list[dict]:
        return [span.to_dict() for span in self.finished()]

    # -- internals ----------------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._finished) >= self._max_spans:
                # Drop the oldest half in one go: O(1) amortised and the
                # recent spans (what a bench report reads) survive.
                del self._finished[: self._max_spans // 2]
                self.dropped += self._max_spans // 2
            self._finished.append(span)


#: The process-wide tracer, sharing the metrics registry's switch.
TRACER = Tracer(REGISTRY)
