"""Registry-snapshot exporters: JSONL and Prometheus text format.

Both render :meth:`MetricsRegistry.snapshot` (counters + histogram
summaries, including the ``leak.*`` metrics the streaming monitor
publishes) so CI can persist one snapshot per configuration and diff
leakage metrics across runs without any scraping infrastructure.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")

#: Histogram percentile keys exported as Prometheus summary quantiles.
_QUANTILES = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))


def metric_lines_jsonl(snapshot: dict) -> list[str]:
    """One JSON object per metric: ``{"metric", "type", ...}``."""
    lines = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(
            json.dumps(
                {"metric": name, "type": "counter", "value": value},
                sort_keys=True,
            )
        )
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        record = {"metric": name, "type": "histogram"}
        record.update(summary)
        lines.append(json.dumps(record, sort_keys=True))
    return lines


def render_jsonl(snapshot: dict) -> str:
    return "".join(line + "\n" for line in metric_lines_jsonl(snapshot))


def prometheus_name(name: str) -> str:
    """``leak.equality.collisions`` → ``repro_leak_equality_collisions``."""
    return "repro_" + _PROM_NAME.sub("_", name.replace(".", "_").replace("-", "_"))


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote, and newline are the three characters the
    format reserves inside quoted label values; anything else passes
    through.  Order matters: escape backslashes first or the other
    escapes get double-escaped.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: dict[str, str]) -> str:
    """``{key="value",...}`` with escaped values; empty dict → no braces."""
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def render_prometheus(snapshot: dict, labels: dict[str, str] | None = None) -> str:
    """The registry snapshot in the Prometheus text exposition format.

    Counters map to ``counter`` samples; histograms map to ``summary``
    families (quantiles from the reservoir percentiles, plus the exact
    ``_count`` and ``_sum``).  ``labels`` are attached to every sample,
    with values escaped for the exposition format — configuration labels
    like ``[12] index (+append cells)`` contain no reserved characters
    today, but nothing upstream guarantees that.
    """
    base = dict(labels or {})
    lines = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        prom = prometheus_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom}{_render_labels(base)} {value}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        prom = prometheus_name(name)
        lines.append(f"# TYPE {prom} summary")
        for key, quantile in _QUANTILES:
            value = summary.get(key)
            if value is not None:
                quantile_labels = dict(base, quantile=quantile)
                lines.append(f"{prom}{_render_labels(quantile_labels)} {value}")
        lines.append(f"{prom}_count{_render_labels(base)} {summary.get('count', 0)}")
        lines.append(f"{prom}_sum{_render_labels(base)} {summary.get('total', 0.0)}")
    return "".join(line + "\n" for line in lines)


def render_prometheus_samples(
    samples,
    type_hint: str = "gauge",
    base_labels: dict[str, str] | None = None,
) -> str:
    """Labeled samples in the Prometheus text exposition format.

    ``samples`` is an iterable of ``(name, labels, value)`` triples — the
    shape :meth:`TelemetryHub.latest` produces — so *every sample carries
    its own label set* (``shard``, ``scheme``, ``rotation_phase``, …),
    rendered as ``metric{label="v"}`` with sorted keys and the PR 5
    escaping, on top of optional ``base_labels`` shared by all samples.
    One ``# TYPE`` line is emitted per metric family, not per sample.
    """
    base = dict(base_labels or {})
    lines: list[str] = []
    typed: set[str] = set()
    for name, labels, value in samples:
        prom = prometheus_name(name)
        if prom not in typed:
            lines.append(f"# TYPE {prom} {type_hint}")
            typed.add(prom)
        merged = dict(base)
        merged.update(labels or {})
        lines.append(f"{prom}{_render_labels(merged)} {value}")
    return "".join(line + "\n" for line in lines)


def series_dropped_samples(series_list) -> list[tuple[str, dict, int]]:
    """Per-series ring-drop counts as ``(name, labels, value)`` triples.

    ``series_list`` is the ``series`` array of a
    :meth:`TelemetryHub.snapshot`.  Every series is reported — including
    the zero counts — under the ``series.dropped`` metric with the
    series' own name attached as a ``series`` label, so an exporter
    scrape can alert on any nonzero sample (the bench harness fails hard
    on the same condition).
    """
    samples = []
    for entry in series_list:
        labels = dict(entry.get("labels", {}))
        labels["series"] = entry["name"]
        samples.append(("series.dropped", labels, int(entry.get("dropped", 0))))
    return samples


def series_lines_jsonl(series_list) -> list[str]:
    """One JSON object per time-series, full sample history included.

    ``series_list`` is the ``series`` array of a
    :meth:`TelemetryHub.snapshot` (each entry already JSON-ready).
    """
    return [
        json.dumps(
            {
                "metric": entry["name"],
                "type": "timeseries",
                "labels": entry.get("labels", {}),
                "samples": entry.get("samples", []),
                "dropped": entry.get("dropped", 0),
            },
            sort_keys=True,
        )
        for entry in series_list
    ]


def render_series_jsonl(series_list) -> str:
    return "".join(line + "\n" for line in series_lines_jsonl(series_list))


def write_snapshot(
    snapshot: dict,
    jsonl_path: str | Path | None = None,
    prometheus_path: str | Path | None = None,
) -> list[Path]:
    """Write the snapshot in the requested format(s); returns the paths."""
    written = []
    if jsonl_path is not None:
        path = Path(jsonl_path)
        path.write_text(render_jsonl(snapshot))
        written.append(path)
    if prometheus_path is not None:
        path = Path(prometheus_path)
        path.write_text(render_prometheus(snapshot))
        written.append(path)
    return written
