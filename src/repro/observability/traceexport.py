"""Chrome trace-event export for finished spans.

Spans render as ``"X"`` (complete) events in the Trace Event Format
consumed by ``chrome://tracing`` and Perfetto: timestamps and durations
in microseconds, one ``tid`` lane per Python thread, and the span's
trace/span/parent ids, attributes, and cost counters under ``args`` so
causal structure and cipher-call attribution survive the export.  The
document header carries the :func:`~repro.observability.runmeta.run_metadata`
provenance block, making every ``trace.json`` self-describing.

:func:`validate_chrome_trace` is the schema check the tests round-trip
exports through; it validates structure, not semantics.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.observability.runmeta import run_metadata
from repro.observability.trace import Span

#: Event category tag for all spans this exporter emits.
_CATEGORY = "repro"


def chrome_trace_events(spans: list[Span]) -> list[dict]:
    """Spans as trace events, timestamps rebased so the trace starts at 0."""
    if not spans:
        return []
    origin = min(span.start for span in spans)
    events = []
    for span in spans:
        events.append(
            {
                "name": span.name,
                "cat": _CATEGORY,
                "ph": "X",
                "ts": (span.start - origin) * 1e6,
                "dur": (span.duration or 0.0) * 1e6,
                "pid": 1,
                "tid": span.thread_id,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "attributes": dict(span.attributes),
                    "costs": dict(span.costs),
                },
            }
        )
    return events


def chrome_trace_document(
    spans: list[Span], metadata: dict | None = None
) -> dict:
    """The full JSON-object-format trace document."""
    return {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": metadata if metadata is not None else run_metadata(),
    }


def render_chrome_trace(spans: list[Span], metadata: dict | None = None) -> str:
    return json.dumps(chrome_trace_document(spans, metadata), sort_keys=True)


def write_chrome_trace(
    path: str | Path, spans: list[Span], metadata: dict | None = None
) -> Path:
    out = Path(path)
    out.write_text(render_chrome_trace(spans, metadata) + "\n")
    return out


def validate_chrome_trace(document: object) -> list[str]:
    """Structural schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    other = document.get("otherData")
    if not isinstance(other, dict):
        errors.append("otherData is not an object")
    else:
        for key in ("python", "platform", "git_describe"):
            if key not in other:
                errors.append(f"otherData lacks {key!r}")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            errors.append(f"{where} is not an object")
            continue
        for key, kinds in (
            ("name", str),
            ("ph", str),
            ("ts", (int, float)),
            ("dur", (int, float)),
            ("pid", int),
            ("tid", int),
            ("args", dict),
        ):
            if not isinstance(event.get(key), kinds):
                errors.append(f"{where}.{key} missing or mistyped")
        if event.get("ph") != "X":
            errors.append(f"{where}.ph is not a complete event")
        if isinstance(event.get("ts"), (int, float)) and event["ts"] < 0:
            errors.append(f"{where}.ts is negative")
        args = event.get("args")
        if isinstance(args, dict):
            if not isinstance(args.get("trace_id"), int):
                errors.append(f"{where}.args.trace_id missing or mistyped")
            if not isinstance(args.get("span_id"), int):
                errors.append(f"{where}.args.span_id missing or mistyped")
            if not isinstance(args.get("parent_id"), (int, type(None))):
                errors.append(f"{where}.args.parent_id mistyped")
            if not isinstance(args.get("costs"), dict):
                errors.append(f"{where}.args.costs missing or mistyped")
    return errors
