"""Labeled time-series telemetry: bounded ring buffers on a logical clock.

The metrics registry answers "what happened in this run"; nothing so far
watches the system *evolve* — per-shard re-encryption progress during an
online rotation, WAL replay frequency across crash-campaign mounts, or
Sect. 4 drift accumulating over a long workload.  This module adds that
axis: a :class:`TelemetryHub` holding named series, each a bounded ring
buffer of ``(tick, value)`` samples under a frozen label set (``shard``,
``scheme``, ``rotation_phase``, …).

Design constraints, matching the rest of the observability stack:

1. **Off by default.**  ``HUB.enabled`` starts False and every record
   path begins with that one attribute check; instrumented call sites
   additionally guard with ``if HUB.enabled:`` so the disabled hot path
   is a single boolean test and allocates nothing.
2. **No wall clock.**  Time is the hub's *logical tick*, advanced only
   by an explicit :meth:`TelemetryHub.tick` call (the rotation state
   machine ticks at its protocol write boundaries; the monitor ticks
   between scenario stages).  Two runs of the same seeded workload
   produce byte-identical snapshots — wall-clock-derived values must be
   recorded with ``volatile=True`` and are excluded from deterministic
   snapshots.
3. **Bounded memory.**  A series retains at most ``capacity`` samples;
   older samples are dropped oldest-first and the drop count is
   reported, never hidden.
4. **Byte-neutral.**  Enabling the hub changes no stored byte (pinned
   by the golden-hash tests in ``tests/observability``).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Iterable

from repro.observability.flightrecorder import RECORDER

SNAPSHOT_SCHEMA = "repro-timeseries/1"

#: Samples retained per series; drops beyond this are counted.
DEFAULT_CAPACITY = 512

#: A telemetry source: zero-arg callable yielding (name, labels, value).
SourceFn = Callable[[], Iterable[tuple[str, dict, float]]]


def scheme_label(config) -> str:
    """Short scheme label for telemetry series (``aead-eax``, ``xor``, …)."""
    scheme = getattr(config, "cell_scheme", None) or "plain"
    if scheme == "aead":
        return f"aead-{getattr(config, 'aead', 'unknown')}"
    return scheme


def series_key(name: str, labels: dict | None) -> tuple:
    """Canonical dict key: the name plus sorted label pairs."""
    if not labels:
        return (name,)
    return (name,) + tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Series:
    """One named, labeled time-series: a ring of ``(tick, value)``."""

    __slots__ = ("name", "labels", "volatile", "dropped", "_samples", "_lock")

    def __init__(
        self,
        name: str,
        labels: dict | None = None,
        capacity: int = DEFAULT_CAPACITY,
        volatile: bool = False,
    ) -> None:
        self.name = name
        self.labels = {str(k): str(v) for k, v in (labels or {}).items()}
        self.volatile = volatile
        self.dropped = 0
        self._samples: deque[tuple[int, float]] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, tick: int, value: float) -> None:
        with self._lock:
            if len(self._samples) == self._samples.maxlen:
                self.dropped += 1
            self._samples.append((tick, value))

    @property
    def samples(self) -> list[tuple[int, float]]:
        with self._lock:
            return list(self._samples)

    def last(self) -> tuple[int, float] | None:
        with self._lock:
            return self._samples[-1] if self._samples else None

    def last_value(self) -> float | None:
        sample = self.last()
        return sample[1] if sample is not None else None

    def window(self, ticks: int, now: int) -> list[tuple[int, float]]:
        """Samples whose tick falls in ``(now - ticks, now]``."""
        return [(t, v) for t, v in self.samples if now - ticks < t <= now]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(sorted(self.labels.items())),
            "samples": [[tick, value] for tick, value in self.samples],
            "dropped": self.dropped,
        }


class TelemetryHub:
    """Every series, the logical clock, and the pull-based samplers.

    Values arrive two ways: *pushed* (``record`` for gauges, ``event``
    for cumulative occurrence counts) by instrumented call sites, or
    *pulled* from registered sources at every :meth:`tick` — e.g. a
    sharded keyspace registers one source per shard so per-shard row
    counts are sampled at each rotation write boundary.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.enabled = False
        self.capacity = capacity
        self._lock = threading.Lock()
        self._series: dict[tuple, Series] = {}
        self._tick = 0
        self._sources: dict[object, tuple[SourceFn, dict]] = {}
        self.on_tick: Callable[[int, "TelemetryHub"], None] | None = None

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every series and source; rewind the clock to tick 0."""
        with self._lock:
            self._series = {}
            self._tick = 0
            self._sources = {}

    def clear_sources(self) -> None:
        """Unregister every pull source (between monitored workloads)."""
        with self._lock:
            self._sources = {}

    # -- the logical clock --------------------------------------------------

    @property
    def current_tick(self) -> int:
        return self._tick

    def tick(self) -> int:
        """Advance the clock, pull every source, fire ``on_tick``."""
        if not self.enabled:
            return self._tick
        with self._lock:
            self._tick += 1
            now = self._tick
            sources = list(self._sources.values())
        for fn, base_labels in sources:
            for name, labels, value in fn():
                merged = dict(base_labels)
                merged.update(labels or {})
                self.record(name, value, labels=merged)
        if self.on_tick is not None:
            self.on_tick(now, self)
        RECORDER.record_hub_tick(now, len(self._series))
        return now

    # -- recording ----------------------------------------------------------

    def series(
        self, name: str, labels: dict | None = None, volatile: bool = False
    ) -> Series:
        key = series_key(name, labels)
        try:
            return self._series[key]
        except KeyError:
            with self._lock:
                return self._series.setdefault(
                    key, Series(name, labels, self.capacity, volatile)
                )

    def record(
        self,
        name: str,
        value: float,
        labels: dict | None = None,
        volatile: bool = False,
    ) -> None:
        """Sample a gauge at the current tick; no-op while disabled."""
        if not self.enabled:
            return
        self.series(name, labels, volatile).record(self._tick, value)

    def event(self, name: str, amount: float = 1, labels: dict | None = None) -> None:
        """Count an occurrence: the series accumulates, counter-style."""
        if not self.enabled:
            return
        series = self.series(name, labels)
        last = series.last_value()
        series.record(self._tick, (last or 0) + amount)

    def add_source(
        self, fn: SourceFn, labels: dict | None = None, key: object = None
    ) -> None:
        """Register a pull sampler invoked at every tick; no-op while
        disabled (sources registered under a disabled hub would leak
        references across unrelated workloads).

        ``key`` makes registration idempotent per logical entity: a
        re-mounted shard replaces its predecessor's sampler instead of
        accumulating one dead source per mount (crash campaigns remount
        hundreds of times).
        """
        if not self.enabled:
            return
        with self._lock:
            self._sources[key if key is not None else fn] = (fn, dict(labels or {}))

    def sample_registry(self, registry, labels: dict | None = None) -> None:
        """Sample a :class:`MetricsRegistry` into labeled series.

        Counters (deterministic under seeds) land as regular series;
        per-histogram p99s — wall-clock derived — land as *volatile*
        series named ``<metric>.p99`` so health rules can watch latency
        without ever entering a deterministic snapshot.
        """
        if not self.enabled:
            return
        for name, value in registry.counters().items():
            self.record(name, value, labels=labels)
        for name, summary in registry.histograms().items():
            p99 = summary.get("p99")
            if p99 is not None:
                self.record(f"{name}.p99", p99, labels=labels, volatile=True)

    # -- reporting ----------------------------------------------------------

    def all_series(self, include_volatile: bool = False) -> list[Series]:
        with self._lock:
            ordered = [self._series[key] for key in sorted(self._series)]
        if include_volatile:
            return ordered
        return [series for series in ordered if not series.volatile]

    def snapshot(self, include_volatile: bool = False) -> dict:
        """JSON-ready view: deterministic by construction (volatile
        series excluded unless explicitly requested)."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "tick": self._tick,
            "series": [s.to_dict() for s in self.all_series(include_volatile)],
        }

    def latest(self, include_volatile: bool = False) -> list[tuple[str, dict, float]]:
        """One ``(name, labels, last value)`` triple per series, for the
        labeled Prometheus/JSONL exporters."""
        triples = []
        for series in self.all_series(include_volatile):
            value = series.last_value()
            if value is not None:
                triples.append((series.name, dict(series.labels), value))
        return triples


#: The process-wide hub instrumented call sites report to.
HUB = TelemetryHub()
