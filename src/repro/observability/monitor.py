"""The ``repro monitor`` driver: workloads under the telemetry hub.

Runs any bench scenario — or the rotation-under-faults campaign — with
the :data:`~repro.observability.timeseries.HUB` collecting labeled
time-series and a :class:`~repro.observability.health.HealthEngine`
evaluating the rule set against them, then emits a schema-validated
``HEALTH.json``:

* per-shard / per-scheme / per-config labeled series (deterministic
  samples only — wall-clock-derived series are volatile and never enter
  the report, so two same-seed runs produce byte-identical documents
  modulo the ``meta`` block);
* the rule table with per-rule fired counts;
* the fired alerts, and an overall ``ok`` verdict.

Fault injection (``inject=("cipher-miscount",)`` /
``--inject cipher-miscount``) exists so the *negative* path is testable:
a simulated Sect. 4 accounting bug or WAL fallback must fire its rule —
a health monitor whose alarms have never rung is untested wiring.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Sequence

from repro.observability.audit import AUDIT
from repro.observability.health import (
    HealthEngine,
    Rule,
    SEVERITY_CRITICAL,
    ThresholdRule,
    default_rules,
)
from repro.observability.leakmon import CONFIG_SLUGS, LeakMonitor
from repro.observability.metrics import REGISTRY
from repro.observability.profile import build_query_profiles
from repro.observability.runmeta import run_metadata
from repro.observability.timeseries import HUB, TelemetryHub, scheme_label
from repro.observability.trace import TRACER

HEALTH_SCHEMA = "repro-health/1"

#: The pseudo-scenario driving the rotation-under-faults campaign
#: (``crashcampaign --phases rotation``) instead of a bench runner.
CAMPAIGN_SCENARIO = "rotation_campaign"

#: Scenarios whose *job* is crashing and replaying: the WAL replay rule
#: would alert on the behaviour under test, so it is dropped for them.
REPLAY_SCENARIOS = frozenset({CAMPAIGN_SCENARIO, "wal_replay", "fault_recovery"})

#: Scenarios where checkpoint/journal damage — and so recovery fallback
#: — is deliberately induced.
FALLBACK_SCENARIOS = frozenset({CAMPAIGN_SCENARIO, "fault_recovery"})

#: Supported fault injections (see module docstring).
INJECTIONS = ("cipher-miscount", "wal-fallback")

#: Cipher calls a simulated Sect. 4 accounting bug adds to the drift.
_MISCOUNT_DRIFT = 7

#: Leak-monitor counters that measure *structural* leakage: ciphertext
#: collisions an adversary can exploit without any key.  Two estimators
#: are deliberately excluded because they measure the workload, not the
#: scheme, under monitored multi-database scenarios:
#: ``access_pattern`` (repeated queries trace identically under every
#: scheme, including the fixed AEADs) and ``cell_forgery`` (shards and
#: rotation clones share ``(table, row, col)`` addresses, so one
#: shard's legitimate write looks like tampering at its sibling's
#: address — forgery stays covered by the offline ``analysis.leakage``
#: probes and the single-database ``audit --live`` cross-validation).
STRUCTURAL_LEAK_COUNTERS = (
    "leak.equality.collisions",
    "leak.prefix.collisions",
    "leak.frequency.repeats",
    "leak.index_linkage.collisions",
)

_SLUG_BY_LABEL = {label: slug for slug, label in CONFIG_SLUGS.items()}


def config_slug(label: str, config) -> str:
    """The CLI slug for a campaign configuration label (``aead-eax``,
    ``dbsec2005``, …); falls back to the cell-scheme label."""
    return _SLUG_BY_LABEL.get(label) or scheme_label(config)


def monitor_scenarios() -> list[str]:
    """Every scenario name ``run_monitor`` accepts, in reporting order."""
    from repro.bench.scenarios import SCENARIOS

    return list(SCENARIOS) + [CAMPAIGN_SCENARIO]


def default_monitor_configs() -> list[tuple[str, object]]:
    """The default monitored configuration: the fixed AEAD (EAX) —
    healthy code must hold every budget on it."""
    from repro.core.encrypted_db import EncryptionConfig

    return [("fixed AEAD (EAX)", EncryptionConfig.paper_fixed("eax"))]


def _sect4_drift(result) -> int:
    """Accumulated |measured − predicted| cipher calls: per-query
    profiles where the Sect. 4 predictor applies, plus the scenario's
    own paper check when it ran one."""
    drift = 0
    for profile in build_query_profiles(TRACER.finished()):
        check = profile.formula_check()
        if check.get("applicable"):
            drift += abs(
                check["measured_cipher_calls"] - check["predicted_cipher_calls"]
            )
    paper_check = getattr(result, "paper_check", None)
    if paper_check is not None:
        drift += abs(
            int(paper_check["predicted_cipher_calls"])
            - int(paper_check["measured_cipher_calls"])
        )
    return drift


def _structural_leaks(leakmon: LeakMonitor) -> int:
    counters = leakmon.registry.counters()
    return sum(counters.get(name, 0) for name in STRUCTURAL_LEAK_COUNTERS)


def _campaign_rules() -> list[Rule]:
    return [
        ThresholdRule(
            "rotation-violations",
            "rotation.campaign.violations",
            ">",
            0,
            severity=SEVERITY_CRITICAL,
        )
    ]


def _run_campaign(label, config, quick: bool, limit: int | None):
    from repro.sharding.campaign import run_rotation_campaign

    result = run_rotation_campaign(
        rows=3 if quick else 4,
        shard_count=2,
        limit=limit if limit is not None else (24 if quick else 60),
        configs=[(label, config)],
    )
    sweep = result.per_config[0]
    return {
        "ops": sweep.trials,
        "paper_ok": result.ok,
        "detail": {
            "trials": sweep.trials,
            "rotation_boundaries": sweep.rotation_boundaries,
            "recovered_pre": sweep.recovered_pre,
            "recovered_post": sweep.recovered_post,
            "rollbacks": sweep.rollbacks,
            "rollforwards": sweep.rollforwards,
            "violations": list(sweep.violations),
        },
    }


def _scenario_supported(scenario: str, config) -> bool:
    """Typed-read scenarios cannot run against lossy codecs.  Probed
    *before* the audit tap is attached: the probe inserts the same
    seeded row the scenario will, and its deterministic ciphertext
    would alias into the leak sketches as a collision."""
    from repro.bench.scenarios import REQUIRES_TYPED_READS, supports_typed_reads

    return scenario not in REQUIRES_TYPED_READS or supports_typed_reads(config)


def _run_bench_scenario(scenario: str, label, config, quick: bool):
    from repro.bench.scenarios import SCENARIOS, SizeProfile

    sizes = SizeProfile.quick() if quick else SizeProfile.full()
    result = SCENARIOS[scenario](label, config, sizes)
    if result.skipped:
        return None
    return result


def run_monitor(
    scenario: str = "shard_rotation",
    config_items: Sequence[tuple[str, object]] | None = None,
    quick: bool = False,
    baseline: dict | None = None,
    extra_rules: Sequence[Rule] | None = None,
    inject: Sequence[str] = (),
    limit: int | None = None,
    follow: Callable[[int, TelemetryHub], None] | None = None,
    hub: TelemetryHub = HUB,
) -> dict:
    """Drive one scenario across configurations under the hub; return
    the JSON-ready health document (see :func:`validate_health_report`).
    """
    from repro import observability

    scenarios = monitor_scenarios()
    if scenario not in scenarios:
        raise ValueError(
            f"unknown scenario {scenario!r}; available: {', '.join(scenarios)}"
        )
    for fault in inject:
        if fault not in INJECTIONS:
            raise ValueError(
                f"unknown injection {fault!r}; available: {', '.join(INJECTIONS)}"
            )
    items = list(config_items) if config_items else default_monitor_configs()

    rules = default_rules(
        baseline=baseline,
        allow_replay=scenario in REPLAY_SCENARIOS,
        allow_fallback=scenario in FALLBACK_SCENARIOS,
    )
    if scenario == CAMPAIGN_SCENARIO:
        rules.extend(_campaign_rules())
    rules.extend(extra_rules or [])
    engine = HealthEngine(rules)

    was_enabled = observability.enabled()
    hub.reset()
    hub.enable()
    hub.on_tick = follow
    observability.enable()
    config_reports = []
    try:
        for label, config in items:
            slug = config_slug(label, config)
            base = {"scenario": scenario, "scheme": slug, "config": label}
            hub.clear_sources()
            observability.reset()
            if not _scenario_supported(scenario, config):
                config_reports.append(
                    {
                        "config": label,
                        "scheme": slug,
                        "skipped": "scheme cannot round-trip typed reads",
                    }
                )
                continue

            # The leak estimators are per-database-instance sketches; the
            # crash campaign deterministically replays one workload over
            # hundreds of fresh instances, so cross-trial digest repeats
            # would measure the replay harness, not the scheme.  Leakage
            # budgets are enforced on the single-instance scenarios.
            attach_leakmon = scenario != CAMPAIGN_SCENARIO
            leakmon = LeakMonitor()
            AUDIT.reset()
            if attach_leakmon:
                AUDIT.subscribe(leakmon.feed)
                AUDIT.enable(timestamps=False)
            try:
                if scenario == CAMPAIGN_SCENARIO:
                    outcome = _run_campaign(label, config, quick, limit)
                else:
                    result = _run_bench_scenario(scenario, label, config, quick)
                    if result is None:
                        config_reports.append(
                            {
                                "config": label,
                                "scheme": slug,
                                "skipped": "scheme cannot round-trip typed reads",
                            }
                        )
                        continue
                    outcome = {
                        "ops": result.ops,
                        "paper_ok": result.ok,
                        "detail": None,
                    }
                    drift = _sect4_drift(result)
            finally:
                if attach_leakmon:
                    AUDIT.unsubscribe(leakmon.feed)
                AUDIT.reset()

            if scenario == CAMPAIGN_SCENARIO:
                drift = _sect4_drift(None)
            if "cipher-miscount" in inject:
                drift += _MISCOUNT_DRIFT
            if "wal-fallback" in inject:
                hub.event("wal.fallback.events", 1, labels=base)

            hub.tick()
            hub.sample_registry(REGISTRY, labels=base)
            hub.record("sect4.drift", drift, labels=base)
            if attach_leakmon:
                hub.record(
                    "leak.structural",
                    _structural_leaks(leakmon),
                    labels=base,
                )
            hub.tick()
            config_reports.append(
                {
                    "config": label,
                    "scheme": slug,
                    "skipped": None,
                    "ops": outcome["ops"],
                    "paper_ok": outcome["paper_ok"],
                    "sect4_drift": drift,
                    "leak_events": (
                        leakmon.summary()["events"] if attach_leakmon else None
                    ),
                    "detail": outcome["detail"],
                }
            )
    finally:
        hub.on_tick = None
        hub.clear_sources()
        if not was_enabled:
            observability.disable()

    alerts = engine.evaluate(hub)
    snapshot = hub.snapshot()
    return {
        "schema": HEALTH_SCHEMA,
        "meta": run_metadata(scenario=scenario),
        "scenario": scenario,
        "quick": quick,
        "injected": sorted(inject),
        "ticks": snapshot["tick"],
        "configs": config_reports,
        "series": snapshot["series"],
        "rules": engine.report(),
        "alerts": [alert.to_dict() for alert in alerts],
        "ok": not alerts,
    }


def validate_health_report(doc: dict) -> list[str]:
    """Structural problems with a health document; empty when valid."""
    problems = []
    if not isinstance(doc, dict):
        return ["health report must be an object"]
    if doc.get("schema") != HEALTH_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {HEALTH_SCHEMA!r}"
        )
    for key, kind in (
        ("meta", dict),
        ("scenario", str),
        ("quick", bool),
        ("injected", list),
        ("ticks", int),
        ("configs", list),
        ("series", list),
        ("rules", list),
        ("alerts", list),
        ("ok", bool),
    ):
        if not isinstance(doc.get(key), kind):
            problems.append(f"'{key}' must be a {kind.__name__}")
    for i, entry in enumerate(doc.get("series") or []):
        where = f"series[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} must be an object")
            continue
        if not isinstance(entry.get("name"), str) or not entry.get("name"):
            problems.append(f"{where} needs a non-empty 'name'")
        if not isinstance(entry.get("labels"), dict):
            problems.append(f"{where} needs a 'labels' object")
        samples = entry.get("samples")
        if not isinstance(samples, list):
            problems.append(f"{where} needs a 'samples' array")
            continue
        last_tick = None
        for sample in samples:
            if (
                not isinstance(sample, list)
                or len(sample) != 2
                or not isinstance(sample[0], int)
                or not isinstance(sample[1], (int, float))
            ):
                problems.append(f"{where} samples must be [tick, value] pairs")
                break
            if last_tick is not None and sample[0] < last_tick:
                problems.append(f"{where} ticks must be non-decreasing")
                break
            last_tick = sample[0]
    for i, rule in enumerate(doc.get("rules") or []):
        where = f"rules[{i}]"
        if not isinstance(rule, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in ("name", "kind", "series", "severity"):
            if not isinstance(rule.get(key), str) or not rule.get(key):
                problems.append(f"{where} needs a non-empty '{key}'")
        if not isinstance(rule.get("fired"), int):
            problems.append(f"{where} needs an integer 'fired'")
    for i, alert in enumerate(doc.get("alerts") or []):
        where = f"alerts[{i}]"
        if not isinstance(alert, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in ("rule", "severity", "series", "message"):
            if not isinstance(alert.get(key), str) or not alert.get(key):
                problems.append(f"{where} needs a non-empty '{key}'")
        if not isinstance(alert.get("tick"), int):
            problems.append(f"{where} needs an integer 'tick'")
    if isinstance(doc.get("ok"), bool) and isinstance(doc.get("alerts"), list):
        if doc["ok"] == bool(doc["alerts"]):
            problems.append("'ok' must be true exactly when no alert fired")
    return problems


def render_health(doc: dict) -> str:
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_health(doc: dict, path: str | Path) -> Path:
    """Validate and write ``HEALTH.json``; refuses an invalid document."""
    problems = validate_health_report(doc)
    if problems:
        raise ValueError("invalid health report: " + "; ".join(problems))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_health(doc))
    return path
