"""Reproducibility metadata stamped into exported artifacts.

Bench reports (``BENCH_<n>.json``) and Chrome trace exports are meant
to be compared across machines and commits, so each carries enough
provenance to be self-describing: interpreter version, platform, the
``git describe`` of the working tree, and — when the caller supplies
them — the workload seed and configuration name.
"""

from __future__ import annotations

import platform
import subprocess
from pathlib import Path


def git_describe() -> str:
    """``git describe --always --dirty`` of this checkout, or "unknown".

    Resolved relative to this file so it reports the repo the code was
    imported from, not whatever directory the process happens to run in.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    describe = out.stdout.strip()
    return describe if out.returncode == 0 and describe else "unknown"


def run_metadata(
    seed: str | None = None, config: str | None = None, **extra: object
) -> dict:
    """The provenance block embedded in bench reports and trace headers."""
    meta: dict = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_describe": git_describe(),
    }
    if seed is not None:
        meta["seed"] = seed
    if config is not None:
        meta["config"] = config
    meta.update(extra)
    return meta
