"""The benchmark harness: scenarios × configurations → one report.

Runs every selected scenario against all six scheme configurations of
the fault campaign (plaintext baseline, the two legacy [3] schemes, the
[12] index scheme, and both AEAD fixes), with observability enabled so
the metric snapshots land in the report.  Before the workload loop it
runs the *paper checks* — the Sect. 4 cost model executed as unit-sized
measurements — whose failure makes the whole report (and the CI job
consuming it) red.
"""

from __future__ import annotations

from repro import observability
from repro.analysis.overhead import (
    PAPER_STORAGE_OCTETS,
    cached_precomputation_offset,
    measure_blockcipher_invocations,
    measure_storage_overhead,
    paper_invocation_formula,
)
from repro.bench.report import build_report, scenario_cipher_calls
from repro.bench.scenarios import (
    REQUIRES_TYPED_READS,
    SCENARIOS,
    _MASTER_KEY,
    ScenarioResult,
    SizeProfile,
    supports_typed_reads,
)
from repro.observability.runmeta import run_metadata
from repro.robustness.campaign import default_campaign_configs

#: (n plaintext blocks, m header blocks) grid the formula is checked on.
_FORMULA_GRID = [(1, 1), (2, 1), (4, 2), (7, 3)]

#: Marginal costs the repo's invocation tests pin: EAX pays 2 calls per
#: extra plaintext block (CTR + OMAC), OCB pays 1; both pay 1 per extra
#: header block.
_EXPECTED_MARGINALS = {"eax": (2.0, 1.0), "ocb": (1.0, 1.0)}


def check_invocation_formulas() -> dict:
    """Measured cipher calls == paper formula (+ documented offset), for
    every (scheme, n, m) grid point, plus the marginal costs."""
    points = []
    ok = True
    for scheme in ("eax", "ocb"):
        offset = cached_precomputation_offset(scheme)
        expected_marginals = _EXPECTED_MARGINALS[scheme]
        for n, m in _FORMULA_GRID:
            measured = measure_blockcipher_invocations(scheme, n, m)
            predicted = paper_invocation_formula(scheme, n, m) + offset
            marginals = (
                measured.marginal_per_plaintext_block,
                measured.marginal_per_header_block,
            )
            point_ok = (
                measured.total_calls == predicted
                and marginals == expected_marginals
            )
            ok = ok and point_ok
            points.append(
                {
                    "scheme": scheme,
                    "n": n,
                    "m": m,
                    "predicted": predicted,
                    "measured": measured.total_calls,
                    "marginals": marginals,
                    "ok": point_ok,
                }
            )
    return {
        "description": (
            "Sect. 4: EAX needs 2n+m+1 blockcipher invocations, OCB "
            "n+m+5 (implementation caches 3 of OCB's per-key calls)"
        ),
        "points": points,
        "ok": ok,
    }


def check_storage_overhead() -> dict:
    """Per-entry stored octets == the paper's 32 (EAX/OCB) resp. 16 (CCFB)."""
    points = []
    ok = True
    for scheme, paper_octets in sorted(PAPER_STORAGE_OCTETS.items()):
        measured = measure_storage_overhead(scheme, b"x" * 40)
        point_ok = measured.total_octets == paper_octets
        ok = ok and point_ok
        points.append(
            {
                "scheme": scheme,
                "paper_octets": paper_octets,
                "measured_octets": measured.total_octets,
                "ok": point_ok,
            }
        )
    return {
        "description": (
            "Sect. 4: storage overhead limited to nonce and tag — "
            "32 octets per entry for EAX and OCB, 16 for CCFB"
        ),
        "points": points,
        "ok": ok,
    }


def run_bench(
    scenario_names: list[str] | None = None,
    quick: bool = False,
) -> dict:
    """Execute the bench and return the report document.

    ``scenario_names`` defaults to every scenario; unknown names raise
    ValueError (the CLI turns that into a usage error).
    """
    if scenario_names is None:
        scenario_names = list(SCENARIOS)
    if not scenario_names:
        raise ValueError(f"no scenarios selected; available: {', '.join(SCENARIOS)}")
    unknown = [name for name in scenario_names if name not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {', '.join(sorted(unknown))}; "
            f"available: {', '.join(SCENARIOS)}"
        )

    sizes = SizeProfile.quick() if quick else SizeProfile.full()
    paper_checks = {
        "blockcipher_invocations": check_invocation_formulas(),
        "storage_overhead": check_storage_overhead(),
    }

    results: list[ScenarioResult] = []
    was_enabled = observability.enabled()
    hub_was_enabled = observability.HUB.enabled
    observability.enable()  # before any database is constructed
    # Telemetry rides along so the report can prove its rings never
    # overflowed: the PR 5 "zero dropped spans" guarantee, extended to
    # the time-series layer.
    observability.HUB.reset()
    observability.HUB.enable()
    # Pin every histogram reservoir to the run's seed, so two identical
    # runs report identical p50/p95/p99 regardless of process history.
    observability.REGISTRY.seed_reservoirs(_MASTER_KEY.hex())
    try:
        configs = default_campaign_configs()
        typed_reads_ok = {
            label: supports_typed_reads(config) for label, config in configs
        }
        for name in scenario_names:
            runner = SCENARIOS[name]
            for label, config in configs:
                if name in REQUIRES_TYPED_READS and not typed_reads_ok[label]:
                    results.append(
                        ScenarioResult.skip(
                            name, label, "cell codec does not round-trip typed values"
                        )
                    )
                    continue
                observability.reset()
                results.append(runner(label, config, sizes))
                dropped = observability.TRACER.dropped
                if dropped:
                    raise AssertionError(
                        f"{name}/{label}: tracer ring evicted {dropped} "
                        "spans mid-bench (trace.spans_dropped != 0); the "
                        "report's span-derived numbers would be partial"
                    )
        series_dropped = telemetry_dropped_entries(observability.HUB)
        for entry in series_dropped:
            if entry["dropped"]:
                raise AssertionError(
                    f"telemetry series {entry['series']!r} {entry['labels']} "
                    f"evicted {entry['dropped']} sample(s) mid-bench; the "
                    "report's series-derived numbers would be partial"
                )
    finally:
        observability.reset()
        observability.HUB.reset()
        if not was_enabled:
            observability.disable()
        if not hub_was_enabled:
            observability.HUB.disable()

    meta = run_metadata(
        seed=_MASTER_KEY.hex(),
        config=", ".join(label for label, _ in default_campaign_configs()),
        scenarios=scenario_names,
    )
    return build_report(
        results,
        paper_checks,
        quick=quick,
        meta=meta,
        series_dropped=series_dropped,
    )


def telemetry_dropped_entries(hub) -> list[dict]:
    """Per-series ring-drop counts from one hub, JSON-ready and sorted.

    Zero counts are embedded too: the report states positively that no
    series overflowed, rather than staying silent about series it never
    looked at.
    """
    entries = [
        {
            "series": entry["name"],
            "labels": entry.get("labels", {}),
            "dropped": int(entry.get("dropped", 0)),
        }
        for entry in hub.snapshot()["series"]
    ]
    entries.sort(key=lambda e: (e["series"], sorted(e["labels"].items())))
    return entries


def summarize(report: dict) -> str:
    """A terminal-friendly digest of one report."""
    lines = []
    status = "OK" if report["ok"] else "DIVERGED"
    profile = "quick" if report["quick"] else "full"
    lines.append(f"bench ({profile} profile): {status}")
    for name, check in report["paper_checks"].items():
        mark = "ok" if check["ok"] else "FAIL"
        lines.append(f"  paper check {name}: {mark}")
    lines.append(
        f"  {'scenario':<16} {'configuration':<24} "
        f"{'seconds':>9} {'ops/s':>10}  cipher calls"
    )
    for entry in report["scenarios"]:
        if entry.get("skipped"):
            lines.append(
                f"  {entry['scenario']:<16} {entry['config']:<24} "
                f"skipped: {entry['skipped']}"
            )
            continue
        cipher_calls = scenario_cipher_calls(entry)
        rate = entry["ops_per_second"]
        check = entry.get("paper_check")
        suffix = ""
        if check is not None:
            suffix = "  [formula ok]" if check["ok"] else "  [FORMULA DIVERGED]"
        lines.append(
            f"  {entry['scenario']:<16} {entry['config']:<24} "
            f"{entry['wall_seconds']:>9.4f} "
            f"{rate:>10.1f}  {cipher_calls}{suffix}"
        )
    return "\n".join(lines)
