"""BENCH_<n>.json: the benchmark artifact format and its validator.

A report is one JSON document per bench run, schema ``repro-bench/1``.
CI uploads it as an artifact and fails the build when ``ok`` is false —
i.e. when any measured blockcipher-invocation or storage-overhead count
diverges from the paper's Sect. 4 cost model.  The format is versioned
so future PRs can extend it without breaking consumers that diff
historical artifacts.
"""

from __future__ import annotations

import json
import platform
import re
import sys
from pathlib import Path

from repro.observability.runmeta import run_metadata

SCHEMA = "repro-bench/1"

#: Schema of the comparison artifact ``compare_reports`` produces.
DELTA_SCHEMA = "repro-bench-delta/1"

#: Default wall-time regression threshold: fail when a scenario gets
#: more than 25 % slower than the baseline.
DEFAULT_WALL_THRESHOLD = 0.25

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def next_bench_path(directory: str | Path = ".") -> Path:
    """First unused ``BENCH_<n>.json`` path in ``directory`` (n from 1)."""
    directory = Path(directory)
    taken = set()
    if directory.is_dir():
        for entry in directory.iterdir():
            match = _BENCH_NAME.match(entry.name)
            if match:
                taken.add(int(match.group(1)))
    n = 1
    while n in taken:
        n += 1
    return directory / f"BENCH_{n}.json"


def build_report(
    scenario_results: list,
    paper_checks: dict,
    quick: bool,
    meta: dict | None = None,
    series_dropped: list | None = None,
) -> dict:
    """Assemble the full report document from scenario results.

    ``meta`` is the reproducibility block (seed, configuration names,
    git describe, interpreter); the harness supplies it so artifacts are
    self-describing, but reports without one stay valid — historical
    baselines predate the field.  ``series_dropped`` embeds the
    per-telemetry-series ring-drop counts the harness observed (all of
    which it requires to be zero); like ``meta``, baselines without the
    field stay valid.
    """
    scenario_dicts = [result.to_dict() for result in scenario_results]
    checks_ok = all(check.get("ok") for check in paper_checks.values())
    scenarios_ok = all(result.ok for result in scenario_results)
    report = {
        "schema": SCHEMA,
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "meta": meta if meta is not None else run_metadata(),
        "scenarios": scenario_dicts,
        "paper_checks": paper_checks,
        "ok": checks_ok and scenarios_ok,
    }
    if series_dropped is not None:
        report["series_dropped"] = series_dropped
    return report


def write_report(report: dict, path: str | Path, overwrite: bool = False) -> Path:
    """Write the report; refuses to clobber an existing file.

    Recorded trajectories (``BENCH_<n>.json``) are append-only history —
    silently overwriting one erases the baseline later runs are compared
    against.  Pass ``overwrite=True`` (CLI: ``--force``) for scratch
    paths that are meant to be replaced.
    """
    path = Path(path)
    if path.exists() and not overwrite:
        raise FileExistsError(
            f"{path} already exists; refusing to overwrite a recorded "
            f"benchmark (use --force, or let the output auto-number)"
        )
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def validate_report(report: dict) -> list[str]:
    """Structural problems with a report document (empty = valid)."""
    problems = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema") != SCHEMA:
        problems.append(f"schema is {report.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(report.get("ok"), bool):
        problems.append("missing boolean 'ok'")
    if not isinstance(report.get("quick"), bool):
        problems.append("missing boolean 'quick'")
    meta = report.get("meta")
    if meta is not None:
        # Optional for historical baselines; structured when present.
        if not isinstance(meta, dict):
            problems.append("'meta' must be an object when present")
        else:
            for field in ("python", "platform", "git_describe"):
                if field not in meta:
                    problems.append(f"meta missing {field!r}")
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        problems.append("'scenarios' must be a non-empty list")
        scenarios = []
    for index, entry in enumerate(scenarios):
        where = f"scenarios[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} is not an object")
            continue
        for field in ("scenario", "config", "wall_seconds", "ops", "counters"):
            if field not in entry:
                problems.append(f"{where} missing {field!r}")
        wall = entry.get("wall_seconds")
        if not isinstance(wall, (int, float)) or wall < 0:
            problems.append(f"{where}.wall_seconds is not a non-negative number")
        check = entry.get("paper_check")
        if check is not None and not isinstance(check.get("ok"), bool):
            problems.append(f"{where}.paper_check missing boolean 'ok'")
    checks = report.get("paper_checks")
    if not isinstance(checks, dict) or not checks:
        problems.append("'paper_checks' must be a non-empty object")
    else:
        for name, check in checks.items():
            if not isinstance(check, dict) or not isinstance(check.get("ok"), bool):
                problems.append(f"paper_checks[{name!r}] missing boolean 'ok'")
    series_dropped = report.get("series_dropped")
    if series_dropped is not None:
        # Optional for historical baselines; structured when present.
        if not isinstance(series_dropped, list):
            problems.append("'series_dropped' must be a list when present")
        else:
            for index, entry in enumerate(series_dropped):
                where = f"series_dropped[{index}]"
                if not isinstance(entry, dict):
                    problems.append(f"{where} is not an object")
                    continue
                if not isinstance(entry.get("series"), str) or not entry.get("series"):
                    problems.append(f"{where} needs a non-empty 'series'")
                dropped = entry.get("dropped")
                if not isinstance(dropped, int) or dropped < 0:
                    problems.append(f"{where}.dropped must be a non-negative int")
    return problems


def scenario_cipher_calls(entry: dict) -> int:
    """Total blockcipher invocations one scenario entry recorded."""
    return sum(
        value
        for counter, value in (entry.get("counters") or {}).items()
        if counter.startswith("cipher.")
    )


def load_report(path: str | Path) -> dict:
    """Read and validate a report file; raises ValueError on problems."""
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except OSError as exc:
        raise ValueError(f"cannot read baseline report {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc.msg}") from None
    problems = validate_report(document)
    if problems:
        raise ValueError(f"{path} is not a valid bench report: {problems[0]}")
    return document


def compare_reports(
    baseline: dict,
    current: dict,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
) -> dict:
    """Per-scenario deltas of ``current`` against ``baseline``.

    Wall-time regressions are gated by ``wall_threshold`` (fractional
    slowdown) and only judged when both reports ran the same size
    profile — quick-vs-full timings are not comparable.  Cipher counts
    are deterministic per profile, so under matching profiles *any*
    increase is a regression.
    """
    profiles_match = baseline.get("quick") == current.get("quick")

    def keyed(report: dict) -> dict:
        return {
            (entry["scenario"], entry["config"]): entry
            for entry in report.get("scenarios", [])
            if not entry.get("skipped")
        }

    base_entries, current_entries = keyed(baseline), keyed(current)
    entries = []
    regressions = []
    for key in sorted(base_entries.keys() & current_entries.keys()):
        base, now = base_entries[key], current_entries[key]
        wall_base, wall_now = base["wall_seconds"], now["wall_seconds"]
        cipher_base = scenario_cipher_calls(base)
        cipher_now = scenario_cipher_calls(now)
        wall_ratio = (wall_now / wall_base) if wall_base else None
        entry = {
            "scenario": key[0],
            "config": key[1],
            "wall_seconds_baseline": wall_base,
            "wall_seconds": wall_now,
            "wall_ratio": wall_ratio,
            "cipher_calls_baseline": cipher_base,
            "cipher_calls": cipher_now,
            "cipher_delta": cipher_now - cipher_base,
        }
        reasons = []
        if profiles_match:
            if wall_ratio is not None and wall_ratio > 1.0 + wall_threshold:
                reasons.append(
                    f"wall time {wall_now:.4f}s is {wall_ratio:.2f}x baseline "
                    f"{wall_base:.4f}s (threshold {1.0 + wall_threshold:.2f}x)"
                )
            if cipher_now > cipher_base:
                reasons.append(
                    f"cipher calls grew {cipher_base} -> {cipher_now} "
                    f"(+{cipher_now - cipher_base})"
                )
        entry["regression"] = bool(reasons)
        entries.append(entry)
        for reason in reasons:
            regressions.append(f"{key[0]}/{key[1]}: {reason}")
    missing = sorted(base_entries.keys() - current_entries.keys())
    for scenario, config in missing:
        regressions.append(f"{scenario}/{config}: present in baseline, missing now")
    return {
        "schema": DELTA_SCHEMA,
        "profiles_match": profiles_match,
        "wall_threshold": wall_threshold,
        "baseline_quick": baseline.get("quick"),
        "current_quick": current.get("quick"),
        "entries": entries,
        "missing_scenarios": [list(key) for key in missing],
        "regressions": regressions,
        "ok": not regressions,
    }


def summarize_comparison(delta: dict) -> str:
    """Terminal-friendly digest of one comparison document."""
    lines = []
    status = "OK" if delta["ok"] else "REGRESSED"
    lines.append(
        f"baseline comparison: {status} "
        f"(wall threshold {delta['wall_threshold'] * 100:.0f}%)"
    )
    if not delta["profiles_match"]:
        lines.append(
            "  note: baseline and current ran different size profiles — "
            "deltas reported, regressions not judged"
        )
    lines.append(
        f"  {'scenario':<16} {'configuration':<24} "
        f"{'wall Δ':>8} {'cipher Δ':>9}"
    )
    for entry in delta["entries"]:
        ratio = entry["wall_ratio"]
        wall = f"{(ratio - 1.0) * 100:+.0f}%" if ratio is not None else "n/a"
        mark = "  REGRESSION" if entry["regression"] else ""
        lines.append(
            f"  {entry['scenario']:<16} {entry['config']:<24} "
            f"{wall:>8} {entry['cipher_delta']:>+9d}{mark}"
        )
    return "\n".join(lines)


def divergences(report: dict) -> list[str]:
    """Human-readable list of every failed paper cross-check."""
    failures = []
    for name, check in (report.get("paper_checks") or {}).items():
        if not check.get("ok"):
            failures.append(f"paper check {name!r} failed: {json.dumps(check)}")
    for entry in report.get("scenarios") or []:
        check = entry.get("paper_check")
        if check is not None and not check.get("ok"):
            failures.append(
                f"{entry.get('scenario')}/{entry.get('config')}: "
                f"predicted {check.get('predicted_cipher_calls')} cipher calls, "
                f"measured {check.get('measured_cipher_calls')}"
            )
    return failures
