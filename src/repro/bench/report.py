"""BENCH_<n>.json: the benchmark artifact format and its validator.

A report is one JSON document per bench run, schema ``repro-bench/1``.
CI uploads it as an artifact and fails the build when ``ok`` is false —
i.e. when any measured blockcipher-invocation or storage-overhead count
diverges from the paper's Sect. 4 cost model.  The format is versioned
so future PRs can extend it without breaking consumers that diff
historical artifacts.
"""

from __future__ import annotations

import json
import platform
import re
import sys
from pathlib import Path

SCHEMA = "repro-bench/1"

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def next_bench_path(directory: str | Path = ".") -> Path:
    """First unused ``BENCH_<n>.json`` path in ``directory`` (n from 1)."""
    directory = Path(directory)
    taken = set()
    if directory.is_dir():
        for entry in directory.iterdir():
            match = _BENCH_NAME.match(entry.name)
            if match:
                taken.add(int(match.group(1)))
    n = 1
    while n in taken:
        n += 1
    return directory / f"BENCH_{n}.json"


def build_report(
    scenario_results: list,
    paper_checks: dict,
    quick: bool,
) -> dict:
    """Assemble the full report document from scenario results."""
    scenario_dicts = [result.to_dict() for result in scenario_results]
    checks_ok = all(check.get("ok") for check in paper_checks.values())
    scenarios_ok = all(result.ok for result in scenario_results)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "scenarios": scenario_dicts,
        "paper_checks": paper_checks,
        "ok": checks_ok and scenarios_ok,
    }


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def validate_report(report: dict) -> list[str]:
    """Structural problems with a report document (empty = valid)."""
    problems = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema") != SCHEMA:
        problems.append(f"schema is {report.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(report.get("ok"), bool):
        problems.append("missing boolean 'ok'")
    if not isinstance(report.get("quick"), bool):
        problems.append("missing boolean 'quick'")
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        problems.append("'scenarios' must be a non-empty list")
        scenarios = []
    for index, entry in enumerate(scenarios):
        where = f"scenarios[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} is not an object")
            continue
        for field in ("scenario", "config", "wall_seconds", "ops", "counters"):
            if field not in entry:
                problems.append(f"{where} missing {field!r}")
        wall = entry.get("wall_seconds")
        if not isinstance(wall, (int, float)) or wall < 0:
            problems.append(f"{where}.wall_seconds is not a non-negative number")
        check = entry.get("paper_check")
        if check is not None and not isinstance(check.get("ok"), bool):
            problems.append(f"{where}.paper_check missing boolean 'ok'")
    checks = report.get("paper_checks")
    if not isinstance(checks, dict) or not checks:
        problems.append("'paper_checks' must be a non-empty object")
    else:
        for name, check in checks.items():
            if not isinstance(check, dict) or not isinstance(check.get("ok"), bool):
                problems.append(f"paper_checks[{name!r}] missing boolean 'ok'")
    return problems


def divergences(report: dict) -> list[str]:
    """Human-readable list of every failed paper cross-check."""
    failures = []
    for name, check in (report.get("paper_checks") or {}).items():
        if not check.get("ok"):
            failures.append(f"paper check {name!r} failed: {json.dumps(check)}")
    for entry in report.get("scenarios") or []:
        check = entry.get("paper_check")
        if check is not None and not check.get("ok"):
            failures.append(
                f"{entry.get('scenario')}/{entry.get('config')}: "
                f"predicted {check.get('predicted_cipher_calls')} cipher calls, "
                f"measured {check.get('measured_cipher_calls')}"
            )
    return failures
