"""Benchmark scenarios: the workloads every perf PR is measured against.

Each scenario runs the same workload against every scheme configuration
the paper analyses (the six of
:func:`~repro.robustness.campaign.default_campaign_configs`), with
observability enabled, and reports wall time plus the metric snapshot —
most importantly the raw blockcipher-invocation counters, the unit the
paper's Sect. 4 cost model is stated in.

For the AEAD configurations the bulk-insert scenario additionally
computes the *predicted* invocation count from the paper's formulas
(``2n + m + 1`` for EAX, ``n + m + 5`` for OCB ⊕ PMAC, minus the
constant our implementation precomputes per key) and cross-checks it
against the measured counter: the cost model as an executable invariant.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro import observability
from repro.analysis.overhead import (
    cached_precomputation_offset,
    paper_invocation_formula,
)
from repro.core.encrypted_db import EncryptedDatabase, EncryptionConfig
from repro.engine.query import PointQuery, RangeQuery
from repro.engine.schema import Column, ColumnType, TableSchema
from repro.engine.storage import dump_database
from repro.primitives.util import blocks_needed
from repro.robustness.faults import map_image, plan_fault
from repro.robustness.recovery import load_database_resilient

_MASTER_KEY = b"bench-master-key-0123456789abcdef"

_SCHEMA = TableSchema(
    "records",
    [
        Column("id", ColumnType.INT),
        Column("payload", ColumnType.TEXT),
        Column("note", ColumnType.TEXT),
    ],
)

#: Octets of associated data per cell: CellAddress.encode() is t ∥ r ∥ c,
#: three 8-octet fields (see :class:`repro.engine.table.CellAddress`).
_CELL_AD_OCTETS = 24

#: AEAD block size all Sect. 4 formulas are stated over (AES).
_BLOCK = 16


@dataclass
class SizeProfile:
    """Workload sizes; ``--quick`` swaps in the small profile."""

    rows: int
    queries: int
    fault_seeds: int

    @classmethod
    def full(cls) -> "SizeProfile":
        return cls(rows=24, queries=24, fault_seeds=5)

    @classmethod
    def quick(cls) -> "SizeProfile":
        return cls(rows=6, queries=6, fault_seeds=2)


@dataclass
class ScenarioResult:
    """One (scenario, configuration) measurement.

    ``skipped`` carries the reason when a workload cannot run against a
    configuration at all (the [3] XOR-Scheme with the paper's
    no-validator decode cannot round-trip typed values, so typed query
    workloads are meaningless against it); a skipped result holds no
    measurements and never fails a paper check.
    """

    scenario: str
    config: str
    wall_seconds: float
    ops: int
    counters: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    storage_overhead_bytes: int | None = None
    paper_check: dict | None = None
    skipped: str | None = None

    @property
    def ok(self) -> bool:
        return self.paper_check is None or bool(self.paper_check.get("ok"))

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "config": self.config,
            "wall_seconds": self.wall_seconds,
            "ops": self.ops,
            "ops_per_second": (
                (self.ops / self.wall_seconds) if self.wall_seconds > 0 else None
            ),
            "counters": self.counters,
            "histograms": self.histograms,
            "storage_overhead_bytes": self.storage_overhead_bytes,
            "paper_check": self.paper_check,
            "skipped": self.skipped,
        }

    @classmethod
    def skip(cls, scenario: str, config: str, reason: str) -> "ScenarioResult":
        return cls(
            scenario=scenario, config=config, wall_seconds=0.0, ops=0, skipped=reason
        )


def _row_values(i: int) -> list:
    payload = "rec-%03d-" % i + "".join(
        chr(ord("a") + (i * 7 + j) % 26) for j in range(30)
    )
    note = "".join(chr(ord("A") + (i * 11 + j) % 26) for j in range(50))
    return [i, payload, note]


def _fresh_db(config: EncryptionConfig) -> EncryptedDatabase:
    return EncryptedDatabase(_MASTER_KEY, config)


def _populated_db(
    config: EncryptionConfig, rows: int, with_indexes: bool
) -> EncryptedDatabase:
    db = _fresh_db(config)
    db.create_table(_SCHEMA)
    for i in range(rows):
        db.insert("records", _row_values(i))
    if with_indexes:
        db.create_index("records_by_payload", "records", "payload", kind="table")
        db.create_index("records_by_id", "records", "id", kind="btree")
    return db


def supports_typed_reads(config: EncryptionConfig) -> bool:
    """True when the cell codec round-trips typed values.

    The [3] XOR-Scheme under the paper's no-validator decode returns the
    still-padded block, so typed reads (and therefore typed query
    workloads) are lossy by design; everything else round-trips.
    """
    db = _fresh_db(config)
    db.create_table(_SCHEMA)
    values = _row_values(0)
    row_id = db.insert("records", values)
    try:
        return db.get_row("records", row_id) == values
    except Exception:
        return False


def _measured_cipher_calls() -> int:
    """Total raw blockcipher invocations recorded since the last reset."""
    counters = observability.REGISTRY.counters()
    return sum(
        value
        for name, value in counters.items()
        if name.startswith("cipher.") and name.endswith("_blocks")
    )


def _predicted_cell_calls(
    config: EncryptionConfig, plaintexts: list[bytes]
) -> int | None:
    """Paper-formula prediction of cipher calls to encrypt these cells.

    Only the AEAD configurations with a Sect. 4 formula (EAX, OCB) are
    predictable; returns None otherwise.
    """
    if config.cell_scheme != "aead":
        return None
    formula_offset = cached_precomputation_offset(config.aead)
    if formula_offset is None:
        return None
    m = blocks_needed(_CELL_AD_OCTETS, _BLOCK)
    total = 0
    for plain in plaintexts:
        n = blocks_needed(len(plain), _BLOCK)
        predicted = paper_invocation_formula(config.aead, n, m)
        if predicted is None:
            return None
        total += predicted + formula_offset
    return total


def _storage_overhead_bytes(db: EncryptedDatabase) -> int:
    """Σ over stored cells of (stored − plaintext) octets, the Sect. 4
    storage metric measured on the live database rather than a single
    synthetic entry."""
    total = 0
    for name in db.table_names:
        table = db.table(name)
        for row_id in table.row_ids:
            for position in range(len(table.schema.columns)):
                stored = table.get_cell(row_id, position)
                plain = db._plain_cell(table, row_id, position)
                total += len(stored) - len(plain)
    return total


def bench_bulk_insert(
    label: str, config: EncryptionConfig, sizes: SizeProfile
) -> ScenarioResult:
    """Insert R fully-sensitive rows into an unindexed table."""
    db = _fresh_db(config)
    db.create_table(_SCHEMA)
    rows = [_row_values(i) for i in range(sizes.rows)]
    schema = db.table("records").schema
    plaintexts = [plain for values in rows for plain in schema.encode_row(values)]
    observability.reset()  # excludes construction-time precomputation
    start = time.perf_counter()
    for values in rows:
        db.insert("records", values)
    wall = time.perf_counter() - start

    snapshot = observability.REGISTRY.snapshot()
    paper_check = None
    predicted = _predicted_cell_calls(config, plaintexts)
    if predicted is not None:
        measured = _measured_cipher_calls()
        paper_check = {
            "formula": f"sum over cells of {config.aead} Sect. 4 formula",
            "predicted_cipher_calls": predicted,
            "measured_cipher_calls": measured,
            "ok": predicted == measured,
        }
    return ScenarioResult(
        scenario="bulk_insert",
        config=label,
        wall_seconds=wall,
        ops=sizes.rows,
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
        storage_overhead_bytes=_storage_overhead_bytes(db),
        paper_check=paper_check,
    )


def bench_batch_insert(
    label: str, config: EncryptionConfig, sizes: SizeProfile
) -> ScenarioResult:
    """Insert R fully-sensitive rows in one :meth:`insert_many` batch.

    Same workload (and same Sect. 4 formula check) as ``bulk_insert``,
    through the batched hot path instead of the per-row loop: key
    schedules, OMAC/PMAC subkey folds, and CTR keystreams are amortized
    across the whole batch.  The blockcipher-invocation counters must
    match the loop exactly — batching changes wall time, never cost
    accounting — and the stored image is byte-identical (the CI
    backend-parity matrix enforces both).
    """
    db = _fresh_db(config)
    db.create_table(_SCHEMA)
    rows = [_row_values(i) for i in range(sizes.rows)]
    schema = db.table("records").schema
    plaintexts = [plain for values in rows for plain in schema.encode_row(values)]
    cells = len(plaintexts)
    observability.reset()  # excludes construction-time precomputation
    start = time.perf_counter()
    db.insert_many("records", rows)
    wall = time.perf_counter() - start

    snapshot = observability.REGISTRY.snapshot()
    measured = _measured_cipher_calls()
    paper_check = None
    predicted = _predicted_cell_calls(config, plaintexts)
    if predicted is not None:
        paper_check = {
            "formula": f"sum over cells of {config.aead} Sect. 4 formula",
            "predicted_cipher_calls": predicted,
            "measured_cipher_calls": measured,
            "ok": predicted == measured,
        }
    result = ScenarioResult(
        scenario="batch_insert",
        config=label,
        wall_seconds=wall,
        ops=sizes.rows,
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
        storage_overhead_bytes=_storage_overhead_bytes(db),
        paper_check=paper_check,
    )
    result.counters["batch.cells"] = cells
    result.counters["batch.cells_per_second"] = (
        int(cells / wall) if wall > 0 else 0
    )
    result.counters["batch.blockcipher_calls_per_cell"] = (
        measured // cells if cells else 0
    )
    return result


def bench_point_query(
    label: str, config: EncryptionConfig, sizes: SizeProfile
) -> ScenarioResult:
    """Index-backed equality lookups (B⁺-tree on INT, index table on TEXT)."""
    db = _populated_db(config, sizes.rows, with_indexes=True)
    observability.reset()
    start = time.perf_counter()
    hits = 0
    for i in range(sizes.queries):
        result = PointQuery("records", "id", i % sizes.rows).execute(db)
        hits += len(result)
    wall = time.perf_counter() - start
    if hits != sizes.queries:
        raise AssertionError(
            f"{label}: point queries returned {hits} rows, expected {sizes.queries}"
        )
    snapshot = observability.REGISTRY.snapshot()
    return ScenarioResult(
        scenario="point_query",
        config=label,
        wall_seconds=wall,
        ops=sizes.queries,
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
    )


def bench_range_query(
    label: str, config: EncryptionConfig, sizes: SizeProfile
) -> ScenarioResult:
    """Index-backed range scans covering half the table each."""
    db = _populated_db(config, sizes.rows, with_indexes=True)
    half = max(1, sizes.rows // 2)
    observability.reset()
    start = time.perf_counter()
    returned = 0
    for i in range(sizes.queries):
        low = i % half
        result = RangeQuery("records", "id", low, low + half - 1).execute(db)
        returned += len(result)
    wall = time.perf_counter() - start
    if returned == 0:
        raise AssertionError(f"{label}: range queries returned no rows")
    snapshot = observability.REGISTRY.snapshot()
    return ScenarioResult(
        scenario="range_query",
        config=label,
        wall_seconds=wall,
        ops=sizes.queries,
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
    )


def bench_index_build(
    label: str, config: EncryptionConfig, sizes: SizeProfile
) -> ScenarioResult:
    """Backfill both index structures over an existing table."""
    db = _populated_db(config, sizes.rows, with_indexes=False)
    observability.reset()
    start = time.perf_counter()
    db.create_index("records_by_payload", "records", "payload", kind="table")
    db.create_index("records_by_id", "records", "id", kind="btree")
    wall = time.perf_counter() - start
    snapshot = observability.REGISTRY.snapshot()
    return ScenarioResult(
        scenario="index_build",
        config=label,
        wall_seconds=wall,
        ops=2 * sizes.rows,
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
    )


def bench_fault_recovery(
    label: str, config: EncryptionConfig, sizes: SizeProfile
) -> ScenarioResult:
    """Resilient-loader recovery of seeded-fault storage images."""
    db = _populated_db(config, sizes.rows, with_indexes=True)
    image = dump_database(db)
    chart = map_image(image)
    faulted_images = [
        plan_fault(chart, seed).apply(image) for seed in range(sizes.fault_seeds)
    ]
    observability.reset()
    start = time.perf_counter()
    recovered_rows = 0
    for faulted in faulted_images:
        loader_db = _fresh_db(config)
        recovered = load_database_resilient(
            faulted,
            cell_codec=loader_db.cell_codec,
            index_codec_factory=loader_db._build_index_codec,
        )
        recovered_rows += recovered.report.rows_recovered
    wall = time.perf_counter() - start
    snapshot = observability.REGISTRY.snapshot()
    result = ScenarioResult(
        scenario="fault_recovery",
        config=label,
        wall_seconds=wall,
        ops=sizes.fault_seeds,
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
    )
    result.counters["recovery.rows_recovered"] = recovered_rows
    return result


def _durable_db(config: EncryptionConfig, disk) -> "DurableDatabase":
    from repro.core.keys import KeyRing
    from repro.durability.manager import DurableDatabase
    from repro.durability.wal import journal_mac

    db = _fresh_db(config)
    return DurableDatabase.open(
        disk,
        journal_mac(KeyRing(_MASTER_KEY)),
        cell_codec=db.cell_codec,
        index_codec_factory=db._build_index_codec,
    )


def bench_wal_commit(
    label: str, config: EncryptionConfig, sizes: SizeProfile
) -> ScenarioResult:
    """Journaled inserts (append + sync per row) plus a final checkpoint.

    The delta against ``bulk_insert`` is the write-ahead overhead the
    durability layer charges per mutation."""
    from repro.durability.vdisk import MemoryDisk

    manager = _durable_db(config, MemoryDisk())
    manager.create_table(_SCHEMA)
    rows = [_row_values(i) for i in range(sizes.rows)]
    observability.reset()
    start = time.perf_counter()
    for values in rows:
        manager.insert("records", values)
    manager.checkpoint()
    wall = time.perf_counter() - start
    snapshot = observability.REGISTRY.snapshot()
    return ScenarioResult(
        scenario="wal_commit",
        config=label,
        wall_seconds=wall,
        ops=sizes.rows,
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
    )


def bench_wal_replay(
    label: str, config: EncryptionConfig, sizes: SizeProfile
) -> ScenarioResult:
    """Crash-recovery mounts of a disk whose journal holds half the rows.

    Measures the replay path: checkpoint load, committed-suffix replay,
    and the end-of-replay index rebuild."""
    from repro.durability.vdisk import MemoryDisk

    disk = MemoryDisk()
    manager = _durable_db(config, disk)
    manager.create_table(_SCHEMA)
    half = max(1, sizes.rows // 2)
    for i in range(half):
        manager.insert("records", _row_values(i))
    manager.create_index("records_by_payload", "records", "payload", kind="table")
    manager.create_index("records_by_id", "records", "id", kind="btree")
    manager.checkpoint()
    for i in range(half, sizes.rows):
        manager.insert("records", _row_values(i))
    image = {name: disk.read(name) for name in disk.names()}

    mounts = max(1, sizes.fault_seeds)
    observability.reset()
    start = time.perf_counter()
    replayed = 0
    for _ in range(mounts):
        recovered = _durable_db(config, MemoryDisk(image))
        replayed += recovered.recovery.records_replayed
    wall = time.perf_counter() - start
    if replayed != mounts * (sizes.rows - half):
        raise AssertionError(
            f"{label}: replayed {replayed} records, "
            f"expected {mounts * (sizes.rows - half)}"
        )
    snapshot = observability.REGISTRY.snapshot()
    return ScenarioResult(
        scenario="wal_replay",
        config=label,
        wall_seconds=wall,
        ops=mounts,
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
    )


def bench_shard_rotation(
    label: str, config: EncryptionConfig, sizes: SizeProfile
) -> ScenarioResult:
    """Online key rotation of a sharded keyspace, under query load.

    Seeds a two-shard keyspace, then rotates it to a new master key
    while issuing an index-backed point query at every protocol write
    boundary (for configurations whose codecs round-trip typed reads —
    the [3] XOR-Scheme rotates unqueried).  Measures the full rotation:
    re-encryption of every cell and index entry, staged checkpoints,
    WAL resets, and manifest rewrites."""
    from repro.core.keys import KeyChain
    from repro.durability.vdisk import MemoryDisk
    from repro.sharding.keyspace import ShardedKeyspace

    keyspace = ShardedKeyspace.open(
        MemoryDisk(), KeyChain.single(_MASTER_KEY), config,
        shard_count=2, workers=1,
    )
    keyspace.create_table(_SCHEMA)
    for i in range(sizes.rows):
        keyspace.insert("records", _row_values(i))
    keyspace.create_index("records_by_payload", "records", "payload", kind="table")
    keyspace.create_index("records_by_id", "records", "id", kind="btree")
    keyspace.checkpoint()

    queried = sizes.rows > 0 and supports_typed_reads(config)
    mid_rotation_hits = 0

    def query_under_rotation(_shard_id: str, _phase: str) -> None:
        nonlocal mid_rotation_hits
        if queried:
            key = mid_rotation_hits % sizes.rows
            mid_rotation_hits += len(
                keyspace.select_equals("records", "id", key)
            )

    observability.reset()
    start = time.perf_counter()
    report = keyspace.rotate(
        b"bench-rotated-key-9876543210fedcba",
        on_phase=query_under_rotation,
    )
    wall = time.perf_counter() - start
    snapshot = observability.REGISTRY.snapshot()
    result = ScenarioResult(
        scenario="shard_rotation",
        config=label,
        wall_seconds=wall,
        ops=report.cells_reencrypted + report.index_entries_reencrypted,
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
    )
    result.counters["rotation.cells_reencrypted"] = report.cells_reencrypted
    result.counters["rotation.index_entries_reencrypted"] = (
        report.index_entries_reencrypted
    )
    result.counters["rotation.mid_rotation_query_hits"] = mid_rotation_hits
    if queried and mid_rotation_hits == 0:
        raise AssertionError(
            f"{label}: no query answered during rotation — the online "
            f"claim went unmeasured"
        )
    return result


def bench_scrub(
    label: str, config: EncryptionConfig, sizes: SizeProfile
) -> ScenarioResult:
    """Anti-entropy repair throughput over a mirrored sharded keyspace.

    Seeds a two-shard keyspace on a three-way mirror, then runs repeated
    scrub passes, corrupting one MAC'd blob on one replica before each;
    every pass must repair its corruption.  The paper check pins the
    Sect. 4 accounting: scrubbing is HMAC-only, so the blockcipher
    counters must stay at exactly **zero**, and the verifier
    applications must match the closed form (1 + 2·shards) · replicas
    per pass — one per blob per replica, nothing hidden."""
    from repro.core.keys import KeyChain
    from repro.durability.vdisk import MemoryDisk
    from repro.resilience.replica import MirroredDisk
    from repro.resilience.scrub import scrub_keyspace
    from repro.sharding.keyspace import ShardedKeyspace

    shards, replicas = 2, 3
    bases = [MemoryDisk() for _ in range(replicas)]
    mirror = MirroredDisk(bases)
    chain = KeyChain.single(_MASTER_KEY)
    keyspace = ShardedKeyspace.open(
        mirror, chain, config, shard_count=shards, workers=1
    )
    keyspace.create_table(_SCHEMA)
    for i in range(sizes.rows):
        keyspace.insert("records", _row_values(i))
    keyspace.checkpoint()

    targets = ["manifest"] + [
        f"s{k}.{blob}" for k in range(shards) for blob in ("wal", "checkpoint")
    ]
    passes = max(1, sizes.fault_seeds)
    observability.reset()
    wall = 0.0
    repairs = 0
    total_macs = 0
    for k in range(passes):
        name = targets[k % len(targets)]
        base = bases[k % replicas]
        blob = bytearray(base.read(name))
        blob[len(blob) // 2] ^= 0x01
        base.write(name, bytes(blob))
        base.sync(name)
        start = time.perf_counter()
        report = scrub_keyspace(mirror, chain)
        wall += time.perf_counter() - start
        if not report.ok:
            raise AssertionError(
                f"{label}: scrub pass {k} left unrepairable blob(s): "
                f"{', '.join(report.unrepaired)}"
            )
        if report.repairs < 1:
            raise AssertionError(
                f"{label}: scrub pass {k} repaired nothing — the "
                f"injected corruption went unhealed"
            )
        repairs += report.repairs
        total_macs += report.mac_verifications

    measured = _measured_cipher_calls()
    predicted_macs = passes * (1 + 2 * shards) * replicas
    paper_check = {
        "formula": (
            "scrub is MAC-only (Sect. 4: zero blockcipher calls); "
            "(1 + 2·shards)·replicas verifier applications per pass"
        ),
        "predicted_cipher_calls": 0,
        "measured_cipher_calls": measured,
        "predicted_mac_verifications": predicted_macs,
        "measured_mac_verifications": total_macs,
        "ok": measured == 0 and total_macs == predicted_macs,
    }
    snapshot = observability.REGISTRY.snapshot()
    result = ScenarioResult(
        scenario="scrub",
        config=label,
        wall_seconds=wall,
        ops=repairs,
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
        paper_check=paper_check,
    )
    result.counters["scrub.passes"] = passes
    result.counters["scrub.repairs"] = repairs
    result.counters["scrub.mac_verifications"] = total_macs
    return result


ScenarioRunner = Callable[[str, EncryptionConfig, SizeProfile], ScenarioResult]

#: Name → runner, in reporting order.
SCENARIOS: dict[str, ScenarioRunner] = {
    "bulk_insert": bench_bulk_insert,
    "batch_insert": bench_batch_insert,
    "point_query": bench_point_query,
    "range_query": bench_range_query,
    "index_build": bench_index_build,
    "fault_recovery": bench_fault_recovery,
    "wal_commit": bench_wal_commit,
    "wal_replay": bench_wal_replay,
    "shard_rotation": bench_shard_rotation,
    "scrub": bench_scrub,
}

#: Scenarios that read typed values back and so are skipped for
#: configurations where :func:`supports_typed_reads` is False.
REQUIRES_TYPED_READS = frozenset({"point_query", "range_query"})
