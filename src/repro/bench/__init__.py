"""Benchmark harness: measured workloads cross-checked against the
paper's Sect. 4 cost model.  Entry point: ``python -m repro bench``."""

from repro.bench.harness import (
    check_invocation_formulas,
    check_storage_overhead,
    run_bench,
    summarize,
)
from repro.bench.report import (
    SCHEMA,
    build_report,
    divergences,
    next_bench_path,
    validate_report,
    write_report,
)
from repro.bench.scenarios import SCENARIOS, ScenarioResult, SizeProfile

__all__ = [
    "SCENARIOS",
    "SCHEMA",
    "ScenarioResult",
    "SizeProfile",
    "build_report",
    "check_invocation_formulas",
    "check_storage_overhead",
    "divergences",
    "next_bench_path",
    "run_bench",
    "summarize",
    "validate_report",
    "write_report",
]
