"""Benchmark harness: measured workloads cross-checked against the
paper's Sect. 4 cost model.  Entry point: ``python -m repro bench``."""

from repro.bench.harness import (
    check_invocation_formulas,
    check_storage_overhead,
    run_bench,
    summarize,
)
from repro.bench.report import (
    DEFAULT_WALL_THRESHOLD,
    DELTA_SCHEMA,
    SCHEMA,
    build_report,
    compare_reports,
    divergences,
    load_report,
    next_bench_path,
    scenario_cipher_calls,
    summarize_comparison,
    validate_report,
    write_report,
)
from repro.bench.scenarios import SCENARIOS, ScenarioResult, SizeProfile

__all__ = [
    "DEFAULT_WALL_THRESHOLD",
    "DELTA_SCHEMA",
    "SCENARIOS",
    "SCHEMA",
    "ScenarioResult",
    "SizeProfile",
    "build_report",
    "check_invocation_formulas",
    "check_storage_overhead",
    "compare_reports",
    "divergences",
    "load_report",
    "next_bench_path",
    "run_bench",
    "scenario_cipher_calls",
    "summarize",
    "summarize_comparison",
    "validate_report",
    "write_report",
]
