"""Scenario drivers behind ``repro explain`` and ``repro trace``.

Runs a small, deterministic query workload — the same schema, rows, and
query mix as the bench scenarios — with tracing enabled, and returns
the finished spans plus their per-query
:class:`~repro.observability.profile.QueryProfile` aggregation.  The
bench harness measures throughput over these workloads; this module
answers the complementary question of *where each query's cipher calls
went*, with the Sect. 4 formula check attached per query.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import observability
from repro.bench.scenarios import (
    REQUIRES_TYPED_READS,
    _MASTER_KEY,
    _populated_db,
    supports_typed_reads,
)
from repro.core.encrypted_db import EncryptionConfig
from repro.engine.query import PointQuery, RangeQuery
from repro.observability.profile import (
    QueryProfile,
    build_query_profiles,
    format_profile,
)
from repro.observability.runmeta import run_metadata
from repro.observability.trace import TRACER, Span

#: Scenarios the explain/trace drivers know how to run.
EXPLAIN_SCENARIOS = ("point_query", "range_query")

#: Workload size: enough rows for a two-level B⁺-tree, small enough
#: that a full six-config explain stays instant.
_ROWS = 8
_QUERIES = 2


@dataclass
class ExplainResult:
    """Profiled spans of one (scenario, configuration) trace run."""

    scenario: str
    config: str
    profiles: list[QueryProfile] = field(default_factory=list)
    spans: list[Span] = field(default_factory=list)
    skipped: str | None = None


def trace_scenario(
    scenario: str, label: str, config: EncryptionConfig
) -> ExplainResult:
    """Run one scenario under tracing; spans cover only the query phase.

    Construction-time spans (inserts, index builds) are discarded so
    every captured trace roots at a ``query.*`` span, but the codecs are
    built with observability already enabled — the instrumented
    primitives are what attach measured and predicted cipher costs.
    """
    if scenario not in EXPLAIN_SCENARIOS:
        raise ValueError(f"unknown explain scenario {scenario!r}")
    if scenario in REQUIRES_TYPED_READS and not supports_typed_reads(config):
        return ExplainResult(
            scenario, label, skipped="codec does not round-trip typed reads"
        )
    was_enabled = observability.enabled()
    observability.enable()
    try:
        observability.reset()
        db = _populated_db(config, _ROWS, with_indexes=True)
        observability.reset()  # drop construction spans, keep instrumented codecs
        if scenario == "point_query":
            for i in range(_QUERIES):
                PointQuery("records", "id", i % _ROWS).execute(db)
        else:
            half = max(1, _ROWS // 2)
            for i in range(_QUERIES):
                low = i % half
                RangeQuery("records", "id", low, low + half - 1).execute(db)
        spans = TRACER.finished()
        return ExplainResult(
            scenario, label, profiles=build_query_profiles(spans), spans=spans
        )
    finally:
        observability.reset()
        if not was_enabled:
            observability.disable()


def explain_metadata(scenario: str, configs: list[str]) -> dict:
    """Trace-export header: workload seed + config names + provenance."""
    return run_metadata(
        seed=_MASTER_KEY.hex(),
        config=", ".join(configs),
        scenario=scenario,
    )


def render_explain_report(results: list[ExplainResult]) -> str:
    """The ``repro explain`` text report over one or more configurations."""
    blocks = []
    for result in results:
        title = f"== {result.scenario} · {result.config} =="
        if result.skipped is not None:
            blocks.append(f"{title}\nskipped: {result.skipped}")
            continue
        body = "\n\n".join(format_profile(profile) for profile in result.profiles)
        blocks.append(f"{title}\n{body}")
    return "\n\n".join(blocks) + "\n"
