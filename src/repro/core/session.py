"""The trusted-session model and Remark 1's client-side traversal.

Sect. 2.1: "the server the DBMS runs on is temporarily trusted: During a
secure session the encryption keys are handed over to the DBMS server,
and securely removed at the end of the session."  :class:`SecureSession`
enforces that lifecycle — queries outside an open session fail, and
closing the session wipes the handed-over key material.

Remark 1: the handover "might be avoided at the cost of additional
running time and logarithmic many additional communication rounds
between client and server", with the client decrypting node data and
answering left/right (or which-child) per round.
:class:`ClientSideTraversal` implements that protocol over both index
structures and counts the rounds, feeding benchmark X3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.encrypted_db import EncryptedDatabase
from repro.engine.btree import BPlusTree
from repro.engine.indextable import NO_REF, IndexTable
from repro.engine.query import Query, QueryResult
from repro.errors import SessionError


class SecureSession:
    """Context manager modelling the Sect. 2.1 key handover.

    The client constructs it with the database (which owns a KeyRing);
    inside the ``with`` block the server may execute queries.  On exit
    the session closes and further queries raise :class:`SessionError`.
    The key ring itself survives (the *client* still has the keys); only
    the server-side handle dies.
    """

    def __init__(self, db: EncryptedDatabase) -> None:
        self._db = db
        self._open = False
        self.queries_executed = 0

    def __enter__(self) -> "SecureSession":
        self.open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def open(self) -> None:
        if self._open:
            raise SessionError("session is already open")
        self._open = True

    def close(self) -> None:
        self._open = False

    @property
    def is_open(self) -> bool:
        return self._open

    def execute(self, query: Query) -> QueryResult:
        """Run a query server-side; only legal while the session is open."""
        if not self._open:
            raise SessionError("no open session: keys are not on the server")
        self.queries_executed += 1
        return query.execute(self._db)


@dataclass
class TraversalTrace:
    """Outcome of one client-side index search (Remark 1)."""

    results: list[tuple[bytes, int]]
    rounds: int
    nodes_fetched: int
    #: Total payload octets the server shipped to the client — the
    #: bandwidth half of Remark 1's "additional running time and
    #: logarithmic many additional communication rounds".
    bytes_transferred: int = 0

    @property
    def row_ids(self) -> list[int]:
        return [row for _, row in self.results]


class ClientSideTraversal:
    """Index search without handing keys to the server.

    Per round the server ships one node's encrypted entries; the client
    decrypts locally and answers which child to fetch next.  Rounds are
    therefore exactly the root-to-leaf path length plus the leaf-chain
    walk — "logarithmic many additional communication rounds".  For a
    d-ary B⁺-tree the height shrinks with log_d, which is Remark 1's
    point about d ≥ 2.
    """

    def __init__(self, structure: IndexTable | BPlusTree) -> None:
        self._structure = structure

    def range_search(self, low: bytes, high: bytes) -> TraversalTrace:
        if isinstance(self._structure, IndexTable):
            return self._range_index_table(low, high)
        return self._range_btree(low, high)

    def search(self, key: bytes) -> TraversalTrace:
        return self.range_search(key, key)

    # -- binary table representation ([3]) ----------------------------------

    def _range_index_table(self, low: bytes, high: bytes) -> TraversalTrace:
        index = self._structure
        rounds = 0
        shipped = 0
        results: list[tuple[bytes, int]] = []
        if index.root_id == NO_REF:
            return TraversalTrace(results, rounds, 0, 0)
        codec = index.codec
        current = index.row(index.root_id)
        while not current.is_leaf:
            rounds += 1  # server ships the node; client answers left/right
            shipped += len(current.payload)
            sep_key, _ = codec.decode(
                current.payload, current.refs(index.index_table_id)
            )
            next_id = current.left if low <= sep_key else current.right
            current = index.row(next_id)

        row_id = current.row_id
        while row_id != NO_REF:
            rounds += 1  # each leaf fetch is one more round
            leaf = index.row(row_id)
            if not leaf.deleted:
                shipped += len(leaf.payload)
                key, table_row = codec.decode(
                    leaf.payload, leaf.refs(index.index_table_id)
                )
                if key > high:
                    break
                if key >= low and table_row is not None:
                    results.append((key, table_row))
            row_id = leaf.sibling
        return TraversalTrace(results, rounds, rounds, shipped)

    # -- d-ary B⁺-tree --------------------------------------------------------

    def _range_btree(self, low: bytes, high: bytes) -> TraversalTrace:
        tree = self._structure
        rounds = 0
        shipped = 0
        results: list[tuple[bytes, int]] = []
        node = tree.node(tree.root_id)
        while not node.is_leaf:
            rounds += 1
            shipped += sum(len(entry.payload) for entry in node.entries)
            position = len(node.entries)
            for slot in range(len(node.entries)):
                key, _ = tree.codec.decode(
                    node.entries[slot].payload, tree.entry_refs(node, slot)
                )
                if low <= key:
                    position = slot
                    break
            node = tree.node(node.children[position])

        while True:
            rounds += 1
            shipped += sum(len(entry.payload) for entry in node.entries)
            for slot in range(len(node.entries)):
                key, table_row = tree.codec.decode(
                    node.entries[slot].payload, tree.entry_refs(node, slot)
                )
                if key > high:
                    return TraversalTrace(results, rounds, rounds, shipped)
                if key >= low and table_row is not None:
                    results.append((key, table_row))
            if node.next_leaf == NO_REF:
                return TraversalTrace(results, rounds, rounds, shipped)
            node = tree.node(node.next_leaf)
