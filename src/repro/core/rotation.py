"""Key rotation for encrypted databases.

The paper's threat model (Sect. 2.1) hands session keys to the DBMS and
wipes them afterwards; any long-lived deployment additionally needs to
*retire* master keys — after suspected compromise, personnel change, or
simply on schedule.  Rotation re-encrypts every sensitive cell and every
index entry under a key ring derived from the new master key, in place,
without changing row ids, index structure, or query results (the
structure-preservation property extends to re-keying).

Rotation is the one operation that legitimately needs both the old and
the new keys simultaneously; it therefore lives in its own module rather
than on :class:`~repro.core.encrypted_db.EncryptedDatabase`, keeping the
facade single-keyed.

This in-place path is **atomic against exceptions but not against
crashes**: if re-encryption raises midway (a corrupt cell failing
authentication, say), every already-rewritten cell and index entry is
restored and the facade keeps its old key ring — but a power cut still
loses the database, since half the cells are on disk under each key.
Crash-safe rotation is the job of the journaled shard-by-shard state
machine in :mod:`repro.sharding.rotation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.encrypted_db import EncryptedDatabase
from repro.core.keys import KeyRing
from repro.engine.btree import BPlusTree
from repro.engine.indextable import IndexTable
from repro.primitives.rng import DeterministicRandom, RandomSource


@dataclass(frozen=True)
class RotationReport:
    """What one rotation touched."""

    cells_reencrypted: int
    index_entries_reencrypted: int
    tables: int
    indexes: int


def rotate_master_key(
    db: EncryptedDatabase,
    new_master_key: bytes,
    rng: RandomSource | None = None,
) -> RotationReport:
    """Re-encrypt ``db`` in place under ``new_master_key``.

    After return, ``db`` behaves as if it had been created with the new
    key: its key ring, cell codec, and index codecs are replaced, old
    ciphertexts are gone from storage, and the old master key no longer
    decrypts anything.  The old key ring is wiped (Sect. 2.1 hygiene).

    If re-encryption raises at any point, the mutation is rolled back:
    every rewritten cell and index payload is restored to its old
    ciphertext and the facade keeps its old key ring, cell codec, and
    randomness source, so the database stays fully readable under the
    old master key.
    """
    old_codec = db.cell_codec
    old_keys = db.keys
    old_rng = db._rng

    # Stand up the new cryptographic material on the same configuration.
    db.keys = KeyRing(new_master_key)
    db._rng = rng if rng is not None else DeterministicRandom(new_master_key)
    new_codec = db._build_cell_codec()

    # Every in-place byte mutation pushes its inverse here; on failure
    # the inverses run newest-first, leaving storage byte-identical.
    undo: list[Callable[[], None]] = []

    cells = 0
    tables = 0
    entries = 0
    indexes = 0
    try:
        for table_name in db.table_names:
            tables += 1
            table = db.table(table_name)
            sensitive_columns = [
                position
                for position, column in enumerate(table.schema.columns)
                if column.sensitive
            ]
            for row_id, stored_cells in table.scan():
                for position in sensitive_columns:
                    address = table.address(row_id, position)
                    plaintext = old_codec.decode_cell(stored_cells[position], address)
                    previous = stored_cells[position]
                    table.set_cell(
                        row_id, position, new_codec.encode_cell(plaintext, address)
                    )
                    undo.append(
                        lambda t=table, r=row_id, p=position, b=previous:
                            t.set_cell(r, p, b)
                    )
                    cells += 1
        db._cell_codec = new_codec

        for index_name in db.index_names:
            indexes += 1
            entries += _rotate_index(db, index_name, undo)
    except BaseException:
        for restore in reversed(undo):
            restore()
        db._cell_codec = old_codec
        db.keys = old_keys
        db._rng = old_rng
        raise

    old_keys.wipe()
    return RotationReport(cells, entries, tables, indexes)


def _rotate_index(
    db: EncryptedDatabase, index_name: str, undo: list[Callable[[], None]]
) -> int:
    """Swap an index structure's codec and re-encode every entry."""
    info = db.index(index_name)
    table = db.table(info.table)
    column_pos = table.schema.column_index(info.column)
    structure = info.structure
    new_codec = db._build_index_codec(
        structure.index_table_id, table.table_id, column_pos
    )

    count = 0
    if isinstance(structure, IndexTable):
        old_codec = structure.codec
        undo.append(lambda s=structure, c=old_codec: setattr(s, "codec", c))
        for row in structure.raw_rows():
            if row.deleted:
                continue
            refs = row.refs(structure.index_table_id)
            key, table_row = old_codec.decode(row.payload, refs)
            previous = row.payload
            row.payload = new_codec.encode(key, table_row, refs)
            undo.append(lambda rr=row, b=previous: setattr(rr, "payload", b))
            count += 1
        structure.codec = new_codec
    elif isinstance(structure, BPlusTree):
        old_codec = structure.codec
        undo.append(lambda s=structure, c=old_codec: setattr(s, "codec", c))
        for node_id in sorted(structure._nodes):
            node = structure.node(node_id)
            for slot, entry in enumerate(node.entries):
                refs = structure.entry_refs(node, slot)
                key, table_row = old_codec.decode(entry.payload, refs)
                previous = entry.payload
                entry.payload = new_codec.encode(key, table_row, refs)
                undo.append(lambda e=entry, b=previous: setattr(e, "payload", b))
                count += 1
        structure.codec = new_codec
    else:  # pragma: no cover - no other structures exist
        raise TypeError(f"unknown index structure {type(structure)!r}")
    return count
