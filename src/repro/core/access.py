"""Key-enforced discretionary access control.

The threat model description the paper inherits from [12] includes
"methods to implement discretionary access control" built on the key
material (Sect. 2.1).  With one AEAD key *per column*, access control
stops being a policy the server promises to enforce and becomes
cryptography: a user holds exactly the column keys they were granted,
and ungranted cells are indistinguishable from random noise to them.

Components:

* :class:`ColumnKeyedCellScheme` — a cell codec deriving an independent
  AEAD key per (table, column) from the master key.  Drop-in replacement
  for the single-key :class:`~repro.core.cellcrypto.AeadCellScheme`
  (enable with ``EncryptionConfig(per_column_keys=True)``).
* :class:`AccessController` — the key owner's grant registry.
* :class:`UserCredential` — what a grantee actually receives: derived
  keys for granted columns, nothing else.  Reading an ungranted column
  fails exactly like tampering does (``invalid``), so the storage layer
  cannot even distinguish "no permission" probing from attack traffic.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.aead.base import AEAD, StoredEntry
from repro.core.keys import KeyRing
from repro.engine.database import CellCodec, Database
from repro.engine.table import CellAddress
from repro.errors import AuthenticationError, SchemaError
from repro.primitives.rng import CountingNonceSource


def _column_purpose(table_id: int, column: int) -> str:
    return f"dac/table-{table_id}/column-{column}"


class ColumnKeyedCellScheme(CellCodec):
    """AEAD cell encryption under per-(table, column) derived keys.

    The stored format is identical to the single-key fixed scheme
    (eq. 23): (N, C, T) with the cell address as associated data — only
    the key derivation differs, so all Sect. 4 security and overhead
    analysis carries over unchanged.
    """

    name = "aead-cell/per-column"
    deterministic = False

    def __init__(self, keys: KeyRing, aead_factory, nonce_size: int = 16) -> None:
        """``aead_factory(key: bytes) -> AEAD`` builds the per-column AEADs."""
        self._keys = keys
        self._aead_factory = aead_factory
        self._nonce_size = nonce_size
        self._aeads: dict[tuple[int, int], AEAD] = {}
        self._nonces: dict[tuple[int, int], CountingNonceSource] = {}

    def column_key(self, table_id: int, column: int) -> bytes:
        return self._keys.derive(_column_purpose(table_id, column))

    def _aead_for(self, table_id: int, column: int) -> AEAD:
        slot = (table_id, column)
        if slot not in self._aeads:
            self._aeads[slot] = self._aead_factory(self.column_key(*slot))
        return self._aeads[slot]

    def _nonces_for(self, table_id: int, column: int) -> CountingNonceSource:
        slot = (table_id, column)
        if slot not in self._nonces:
            self._nonces[slot] = CountingNonceSource(self._nonce_size)
        return self._nonces[slot]

    def encode_cell(self, plaintext: bytes, address: CellAddress) -> bytes:
        aead = self._aead_for(address.table, address.column)
        nonce = self._nonces_for(address.table, address.column).next()
        ciphertext, tag = aead.encrypt(nonce, plaintext, address.encode())
        return StoredEntry(nonce, ciphertext, tag).to_bytes()

    def decode_cell(self, stored: bytes, address: CellAddress) -> bytes:
        try:
            entry = StoredEntry.from_bytes(stored)
        except ValueError:
            raise AuthenticationError("invalid") from None
        aead = self._aead_for(address.table, address.column)
        return aead.decrypt(entry.nonce, entry.ciphertext, entry.tag, address.encode())

    def encode_cells(
        self, items: Sequence[tuple[bytes, CellAddress]]
    ) -> list[bytes]:
        # Group by (table, column) so each column's AEAD sees one batch.
        # Within a group the original list order is kept, so every
        # per-column nonce counter advances exactly as the sequential
        # loop would have advanced it.
        grouped: dict[tuple[int, int], list[int]] = {}
        for index, (_, address) in enumerate(items):
            grouped.setdefault((address.table, address.column), []).append(index)
        out: list[bytes] = [b""] * len(items)
        for slot, indexes in grouped.items():
            aead = self._aead_for(*slot)
            nonces = self._nonces_for(*slot)
            triples = [
                (nonces.next(), items[i][0], items[i][1].encode()) for i in indexes
            ]
            sealed = aead.encrypt_batch(triples)
            for i, (nonce, _, _), (ciphertext, tag) in zip(indexes, triples, sealed):
                out[i] = StoredEntry(nonce, ciphertext, tag).to_bytes()
        return out

    def decode_cells(
        self, items: Sequence[tuple[bytes, CellAddress]]
    ) -> list[bytes]:
        grouped: dict[tuple[int, int], list[int]] = {}
        entries: list[StoredEntry] = []
        for index, (stored, address) in enumerate(items):
            try:
                entries.append(StoredEntry.from_bytes(stored))
            except ValueError:
                raise AuthenticationError("invalid") from None
            grouped.setdefault((address.table, address.column), []).append(index)
        out: list[bytes] = [b""] * len(items)
        for slot, indexes in grouped.items():
            aead = self._aead_for(*slot)
            quads = [
                (
                    entries[i].nonce,
                    entries[i].ciphertext,
                    entries[i].tag,
                    items[i][1].encode(),
                )
                for i in indexes
            ]
            for i, plaintext in zip(indexes, aead.decrypt_batch(quads)):
                out[i] = plaintext
        return out


@dataclass(frozen=True)
class Grant:
    """One (user, table, column) permission."""

    user: str
    table: str
    column: str


class UserCredential:
    """The derived key material one user actually holds.

    Built by :meth:`AccessController.credential_for`; contains per-column
    AEADs for granted columns only.  There is no reference back to the
    master key ring — leaking a credential leaks exactly its grants.
    """

    def __init__(
        self, user: str, aeads: dict[tuple[int, int], AEAD],
        names: dict[tuple[str, str], tuple[int, int]],
    ) -> None:
        self.user = user
        self._aeads = aeads
        self._names = names

    @property
    def granted_columns(self) -> list[tuple[str, str]]:
        return sorted(self._names)

    def can_read(self, table: str, column: str) -> bool:
        return (table, column) in self._names

    def decrypt_cell(
        self, stored: bytes, table: str, column: str, address: CellAddress
    ) -> bytes:
        """Decrypt a stored cell with this credential's keys.

        Raises the same opaque ``invalid`` for missing grants as for
        tampered data — an observer cannot tell which.
        """
        slot = self._names.get((table, column))
        if slot is None:
            raise AuthenticationError("invalid")
        try:
            entry = StoredEntry.from_bytes(stored)
        except ValueError:
            raise AuthenticationError("invalid") from None
        return self._aeads[slot].decrypt(
            entry.nonce, entry.ciphertext, entry.tag, address.encode()
        )


class AccessController:
    """Grant registry held by the key owner (the client of Sect. 2.1)."""

    def __init__(self, db: Database, scheme: ColumnKeyedCellScheme, aead_factory) -> None:
        if db.cell_codec is not scheme:
            raise SchemaError(
                "the database must use the ColumnKeyedCellScheme being granted from"
            )
        self._db = db
        self._scheme = scheme
        self._aead_factory = aead_factory
        self._grants: set[Grant] = set()

    def grant(self, user: str, table: str, column: str) -> Grant:
        table_obj = self._db.table(table)      # validates the table name
        table_obj.schema.column_index(column)  # validates the column name
        grant = Grant(user, table, column)
        self._grants.add(grant)
        return grant

    def revoke(self, user: str, table: str, column: str) -> bool:
        """Forget a grant.

        Note the classic caveat (true of every key-based DAC): revocation
        stops *future* credential issuance; credentials already handed
        out keep working until the column key is rotated.
        """
        grant = Grant(user, table, column)
        if grant in self._grants:
            self._grants.remove(grant)
            return True
        return False

    def grants_for(self, user: str) -> list[Grant]:
        return sorted(
            (g for g in self._grants if g.user == user),
            key=lambda g: (g.table, g.column),
        )

    def credential_for(self, user: str) -> UserCredential:
        """Derive and package the user's column keys."""
        aeads: dict[tuple[int, int], AEAD] = {}
        names: dict[tuple[str, str], tuple[int, int]] = {}
        for grant in self.grants_for(user):
            table = self._db.table(grant.table)
            column_pos = table.schema.column_index(grant.column)
            slot = (table.table_id, column_pos)
            aeads[slot] = self._aead_factory(
                self._scheme.column_key(table.table_id, column_pos)
            )
            names[(grant.table, grant.column)] = slot
        return UserCredential(user, aeads, names)
