"""The encrypted database facade: engine + schemes + keys in one object.

This is the top of the public API.  An :class:`EncryptedDatabase` is a
:class:`~repro.engine.database.Database` whose cell codec and index
codec factory are built from an :class:`EncryptionConfig` — one switch
per design decision the paper analyses:

* ``cell_scheme``  — ``"xor"`` (eq. 1), ``"append"`` (eq. 2),
  ``"aead"`` (eqs. 23–24), or ``"plain"``.
* ``index_scheme`` — ``"sdm2004"`` (eqs. 4–5), ``"dbsec2005"`` (eq. 7),
  ``"aead"`` (eqs. 25–26), or ``"plain"``.
* ``iv_policy``    — ``"zero"`` reproduces the paper's deterministic E
  (the Sect. 3 counter-examples); ``"random"`` is the ablation.
* ``mac_shared_key`` / ``faithful_leaf_bug`` — the two [12] pathologies
  (Sect. 3.3 / footnote 1).
* ``aead`` — which Sect. 4 AEAD to fix with (eax, ocb, ccfb, gcm, siv).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.aead import CCFB, EAX, GCM, OCB, SIV
from repro.aead.base import AEAD
from repro.core.address import HashMu, KeyedMu, Mu
from repro.core.cellcrypto import (
    AeadCellScheme,
    AppendScheme,
    Validator,
    XorScheme,
    no_validator,
)
from repro.core.indexcrypto import (
    AeadIndexCodec,
    DBSec2005IndexCodec,
    SDM2004IndexCodec,
)
from repro.core.keys import KeyRing
from repro.engine.codec import IndexEntryCodec, PlainEntryCodec
from repro.engine.database import CellCodec, Database, PlainCellCodec
from repro.errors import SchemaError
from repro.mac.omac import OMAC
from repro.modes.base import RandomIV, ZeroIV
from repro.modes.cbc import CBC
from repro.observability import (
    maybe_audit_cell_codec,
    maybe_audit_index_codec,
    maybe_audit_mac,
    maybe_instrument_aead,
    maybe_instrument_cipher,
    maybe_instrument_mac,
)
from repro.primitives.backends import available_backends, make_cipher
from repro.primitives.rng import (
    CountingNonceSource,
    DeterministicRandom,
    RandomSource,
)

_CELL_SCHEMES = ("plain", "xor", "append", "aead")
_INDEX_SCHEMES = ("plain", "sdm2004", "dbsec2005", "aead")
_AEADS = ("eax", "ocb", "ccfb", "gcm", "siv")
_IV_POLICIES = ("zero", "random")
_CIPHERS = ("aes", "des", "3des")


@dataclass(frozen=True)
class EncryptionConfig:
    """Every switch the paper's analysis turns."""

    cell_scheme: str = "aead"
    index_scheme: str = "aead"
    aead: str = "eax"
    iv_policy: str = "zero"
    mac_shared_key: bool = True
    faithful_leaf_bug: bool = True
    mu_keyed: bool = False
    randomness_size: int = 8
    xor_validator: Validator = no_validator
    #: Derive an independent AEAD key per (table, column), enabling the
    #: key-based discretionary access control of [12]'s model (see
    #: :mod:`repro.core.access`).  AEAD cell scheme only.
    per_column_keys: bool = False
    #: Block cipher for the legacy [3]/[12] schemes.  The paper names
    #: both DES and AES (Sect. 2.2); the substitution attack's cost is
    #: 2^b for b-octet blocks, so DES (b = 8) is dramatically weaker.
    #: The AEAD fix always runs over AES (its schemes need 128-bit blocks).
    cipher: str = "aes"
    #: Block-cipher *backend* (implementation) from the pluggable registry
    #: in :mod:`repro.primitives.backends`: ``"pure"`` (reference),
    #: ``"optimized"`` (T-table AES), or any registered name.  ``None``
    #: defers to ``set_default_backend`` / ``$REPRO_CIPHER_BACKEND`` /
    #: ``"pure"``.  Backends are byte-for-byte interchangeable; the CI
    #: parity matrix enforces it.
    backend: str | None = None

    def validate(self) -> None:
        if self.cell_scheme not in _CELL_SCHEMES:
            raise SchemaError(f"cell_scheme must be one of {_CELL_SCHEMES}")
        if self.index_scheme not in _INDEX_SCHEMES:
            raise SchemaError(f"index_scheme must be one of {_INDEX_SCHEMES}")
        if self.aead not in _AEADS:
            raise SchemaError(f"aead must be one of {_AEADS}")
        if self.iv_policy not in _IV_POLICIES:
            raise SchemaError(f"iv_policy must be one of {_IV_POLICIES}")
        if self.cipher not in _CIPHERS:
            raise SchemaError(f"cipher must be one of {_CIPHERS}")
        if self.backend is not None and self.backend not in available_backends():
            raise SchemaError(
                f"backend must be one of {available_backends()} (or None)"
            )

    @classmethod
    def paper_broken(cls, cell_scheme: str = "append", index_scheme: str = "sdm2004") -> "EncryptionConfig":
        """The configurations Sect. 3 attacks: deterministic E, shared keys,
        faithful leaf bug."""
        return cls(
            cell_scheme=cell_scheme,
            index_scheme=index_scheme,
            iv_policy="zero",
            mac_shared_key=True,
            faithful_leaf_bug=True,
        )

    @classmethod
    def paper_fixed(cls, aead: str = "eax") -> "EncryptionConfig":
        """The Sect. 4 fix: AEAD everywhere, addresses as associated data."""
        return cls(cell_scheme="aead", index_scheme="aead", aead=aead)

    def with_(self, **changes: Any) -> "EncryptionConfig":
        """Functional update helper for ablations."""
        return replace(self, **changes)


def _make_aead(name: str, key: bytes, backend: str | None = None) -> AEAD:
    # When observability is enabled at construction time, the underlying
    # AES is wrapped so every raw blockcipher invocation — the paper's
    # Sect. 4 unit of account — lands in the metrics registry.  The
    # backend only picks an implementation; every backend emits the same
    # bytes and the same counter names.
    def aes(k: bytes):
        return maybe_instrument_cipher(make_cipher("aes", k, backend=backend))

    if name == "eax":
        return maybe_instrument_aead(EAX(aes(key)))
    if name == "ocb":
        return maybe_instrument_aead(OCB(aes(key)))
    if name == "ccfb":
        return maybe_instrument_aead(CCFB(aes(key)))
    if name == "gcm":
        return maybe_instrument_aead(GCM(aes(key)))
    if name == "siv":
        # SIV needs two subkeys; stretch deterministically from the one key.
        from repro.primitives.hmac import hmac_sha256

        return maybe_instrument_aead(
            SIV(aes(key), aes(hmac_sha256(key, b"siv-ctr")[:16]))
        )
    raise SchemaError(f"unknown AEAD {name!r}")


def _nonce_size_for(aead: AEAD) -> int:
    return aead.nonce_size if aead.nonce_size is not None else 16


class EncryptedDatabase(Database):
    """A Database whose storage is protected per an :class:`EncryptionConfig`.

    All query/DML methods are inherited from
    :class:`~repro.engine.database.Database`; this class only assembles
    the cryptographic plumbing (and offers the adversary's storage view
    for the attack framework).
    """

    def __init__(
        self,
        master_key: bytes,
        config: EncryptionConfig | None = None,
        rng: RandomSource | None = None,
    ) -> None:
        self.config = config if config is not None else EncryptionConfig()
        self.config.validate()
        self.keys = KeyRing(master_key)
        self._rng = rng if rng is not None else DeterministicRandom(master_key)

        cell_codec = self._build_cell_codec()
        super().__init__(
            cell_codec=cell_codec,
            index_codec_factory=self._build_index_codec,
        )

    # -- scheme assembly -----------------------------------------------------

    def _legacy_key(self) -> bytes:
        """The single key k of [3]/[12].

        The original schemes encrypt cells AND index entries under the
        same k — which is what lets Sect. 3.2/3.3 correlate index and
        table ciphertexts, and what the Sect. 3.3 MAC interaction needs.
        The AEAD fix uses properly separated per-purpose keys instead.
        """
        return self.keys.derive("legacy-k")

    def _mu(self) -> Mu:
        # µ is truncated to the legacy cipher's block size, as [3]
        # suggests ("if necessary shortened to the block size").
        size = self._legacy_cipher(self.keys.mu_key()).block_size
        if self.config.mu_keyed:
            return KeyedMu(self.keys.mu_key(), size=size)
        return HashMu(size=size)

    def _legacy_cipher(self, key: bytes):
        """Block cipher instance for the [3]/[12] schemes."""
        backend = self.config.backend
        if self.config.cipher == "des":
            cipher = make_cipher("des", key[:8], backend=backend)
        elif self.config.cipher == "3des":
            cipher = make_cipher("3des", key + key[:8], backend=backend)
        else:
            cipher = make_cipher("aes", key, backend=backend)
        return maybe_instrument_cipher(cipher)

    def _mode(self, key: bytes):
        """The deterministic-or-random E the [3]/[12] schemes run over."""
        cipher = self._legacy_cipher(key)
        if self.config.iv_policy == "zero":
            return CBC(cipher, ZeroIV())
        return CBC(cipher, RandomIV(self._rng.fork("cbc-iv")))

    def _build_cell_codec(self) -> CellCodec:
        # The audit wrapper is a byte-exact pass-through (and a no-op
        # unless AUDIT is enabled at construction), like maybe_instrument_*.
        return maybe_audit_cell_codec(self._make_cell_codec())

    def _make_cell_codec(self) -> CellCodec:
        scheme = self.config.cell_scheme
        if scheme == "plain":
            return PlainCellCodec()
        if scheme == "xor":
            return XorScheme(
                self._mode(self._legacy_key()),
                self._mu(),
                validator=self.config.xor_validator,
            )
        if scheme == "append":
            return AppendScheme(self._mode(self._legacy_key()), self._mu())
        if self.config.per_column_keys:
            from repro.core.access import ColumnKeyedCellScheme

            def factory(key: bytes) -> AEAD:
                return _make_aead(self.config.aead, key, backend=self.config.backend)

            probe = _make_aead(self.config.aead, bytes(16), backend=self.config.backend)
            return ColumnKeyedCellScheme(
                self.keys, factory, nonce_size=_nonce_size_for(probe)
            )
        aead = _make_aead(
            self.config.aead, self.keys.cell_key(), backend=self.config.backend
        )
        return AeadCellScheme(aead, CountingNonceSource(_nonce_size_for(aead)))

    def _build_index_codec(
        self, index_table_id: int, table_id: int, column_pos: int
    ) -> IndexEntryCodec:
        return maybe_audit_index_codec(
            self._make_index_codec(index_table_id, table_id, column_pos),
            index_table_id,
            table_id,
            column_pos,
        )

    def _make_index_codec(
        self, index_table_id: int, table_id: int, column_pos: int
    ) -> IndexEntryCodec:
        scheme = self.config.index_scheme
        if scheme == "plain":
            return PlainEntryCodec()
        if scheme == "sdm2004":
            return SDM2004IndexCodec(self._mode(self._legacy_key()))
        if scheme == "dbsec2005":
            if self.config.mac_shared_key:
                # The [12] pathology: MAC keyed with the encryption key.
                mac = maybe_instrument_mac(OMAC(self._legacy_cipher(self._legacy_key())))
            else:
                mac = maybe_instrument_mac(
                    OMAC(self._legacy_cipher(self.keys.index_mac_key()))
                )
            mac = maybe_audit_mac(mac)
            return DBSec2005IndexCodec(
                self._mode(self._legacy_key()),
                mac,
                self._rng.fork(f"index-{index_table_id}"),
                randomness_size=self.config.randomness_size,
                faithful_leaf_bug=self.config.faithful_leaf_bug,
            )
        aead = _make_aead(
            self.config.aead, self.keys.index_key(), backend=self.config.backend
        )
        return AeadIndexCodec(
            aead,
            CountingNonceSource(_nonce_size_for(aead)),
            indexed_table=table_id,
            indexed_column=column_pos,
        )

    # -- the adversary's view ---------------------------------------------------

    def storage_view(self) -> "StorageView":
        """What a rogue storage administrator sees: everything, keyless."""
        return StorageView(self)


class StorageView:
    """Read/tamper access to stored bytes without any keys.

    Models the adversary of Sect. 1: "anyone with physical access to the
    machine or storage system holding the actual data can copy or modify
    it".  Only *stored* representations are reachable from here.
    """

    def __init__(self, db: Database) -> None:
        self._db = db

    # cells ---------------------------------------------------------------

    def cell(self, table_name: str, row_id: int, column: int) -> bytes:
        return self._db.table(table_name).get_cell(row_id, column)

    def set_cell(self, table_name: str, row_id: int, column: int, payload: bytes) -> None:
        self._db.table(table_name).set_cell(row_id, column, payload)

    def cells(self, table_name: str, column: int) -> list[tuple[int, bytes]]:
        table = self._db.table(table_name)
        return [(row_id, cells[column]) for row_id, cells in table.scan()]

    def table_id(self, table_name: str) -> int:
        return self._db.table(table_name).table_id

    # indexes --------------------------------------------------------------

    def index_structure(self, index_name: str):
        return self._db.index(index_name).structure

    def index_payloads(self, index_name: str) -> list[tuple[int, bytes]]:
        """(r_I, stored payload) for every index entry."""
        structure = self._db.index(index_name).structure
        if hasattr(structure, "raw_rows"):
            return [
                (row.row_id, row.payload)
                for row in structure.raw_rows()
                if not row.deleted
            ]
        return [
            (entry.row_id, entry.payload)
            for _, _, entry in structure.raw_entries()
        ]
