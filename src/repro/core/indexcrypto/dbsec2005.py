"""The improved index encryption scheme of [12] (paper §2.4, eqs. 6–7).

An index entry (V_trc, Ref_I, Ref_T) is stored as the quadruple

    ( Ẽ_k(V_trc),  Ref_I,  E'_k(Ref_T),  MAC_k(V_trc ∥ Ref_I ∥ Ref_T ∥ Ref_S) )

with the nondeterministic encryption Ẽ_k(x) := E_k(x ∥ a) for a
fixed-size random a (eq. 6), an "ordinary" (deterministic) E', and a
message authentication code.  Ref_I lives in the clear in the index
structure; this codec stores the remaining three components.

Two deliberate reproduction knobs:

* ``shared_key_mac`` (paper's pathology): [12] uses *the same key k* for
  encryption and MAC.  With zero-IV CBC encryption and a CBC-MAC variant
  (OMAC), the MAC's internal chaining values coincide with ciphertext
  blocks, enabling the Sect. 3.3 forgery (attack E7).  Supplying an
  independently-keyed MAC is the ablation that kills that one attack.
* ``faithful_leaf_bug`` (paper's footnote 1): the published query
  pseudo-code "fails to [check integrity] on the leaf-level, both for
  finding the right starting place for the answer, and for generating
  the answer from the list of right-sibling references".  When True,
  ``decode_for_query`` skips MAC verification at leaves, reproducing the
  bug; inner-node verification always happens, as in the paper.

Even with everything verified, Sect. 3.3's pattern-matching attack
stands: appending randomness at the *end* leaves all full blocks of V
before it deterministically encrypted (attack E6).
"""

from __future__ import annotations

import struct

from repro.engine.codec import EntryRefs, IndexEntryCodec
from repro.errors import AuthenticationError
from repro.mac.base import MAC
from repro.modes.base import CipherMode
from repro.primitives.rng import RandomSource

_ROW_WIDTH = 8


class DBSec2005IndexCodec(IndexEntryCodec):
    """The [12] entry format: (Ẽ(V), E'(Ref_T), MAC(...))."""

    name = "dbsec2005"

    def __init__(
        self,
        mode: CipherMode,
        mac: MAC,
        rng: RandomSource,
        randomness_size: int = 8,
        faithful_leaf_bug: bool = True,
    ) -> None:
        if randomness_size < 1:
            raise ValueError("the random suffix a must be non-empty")
        self._mode = mode
        self._mac = mac
        self._rng = rng
        self._a_size = randomness_size
        self.faithful_leaf_bug = faithful_leaf_bug

    @property
    def mode(self) -> CipherMode:
        return self._mode

    @property
    def mac(self) -> MAC:
        return self._mac

    @property
    def randomness_size(self) -> int:
        return self._a_size

    # -- the MAC input of eq. (7) ------------------------------------------------

    def mac_message(
        self, key: bytes, table_row: int, refs: EntryRefs
    ) -> bytes:
        """V_trc ∥ Ref_I ∥ Ref_T ∥ Ref_S, byte-encoded.

        V_trc comes first — the detail the Sect. 3.3 interaction attack
        needs, because the MAC's first blocks then coincide with the
        encryption's first plaintext blocks.
        """
        ref_s = struct.pack(">qq", refs.index_table, refs.row_id)
        return (
            key
            + refs.encode_internal()
            + table_row.to_bytes(_ROW_WIDTH, "big")
            + ref_s
        )

    # -- codec interface ---------------------------------------------------------

    def encode(self, key: bytes, table_row: int | None, refs: EntryRefs) -> bytes:
        if table_row is None:
            raise ValueError(
                "[12] entries are (V, Ref_I, Ref_T) triples; Ref_T is required"
            )
        randomness = self._rng.bytes(self._a_size)
        value_ct = self._mode.encrypt(key + randomness)      # Ẽ_k(V) = E_k(V ∥ a)
        row_ct = self._mode.encrypt(table_row.to_bytes(_ROW_WIDTH, "big"))
        tag = self._mac.tag(self.mac_message(key, table_row, refs))
        return b"".join(
            struct.pack(">I", len(part)) + part for part in (value_ct, row_ct, tag)
        )

    def split_payload(self, payload: bytes) -> tuple[bytes, bytes, bytes]:
        """Parse the stored triple (Ẽ(V), E'(Ref_T), tag) — also used by
        the attack code, which manipulates components individually."""
        parts = []
        offset = 0
        for _ in range(3):
            if offset + 4 > len(payload):
                raise AuthenticationError("truncated index entry")
            (length,) = struct.unpack_from(">I", payload, offset)
            offset += 4
            if offset + length > len(payload):
                raise AuthenticationError("truncated index entry")
            parts.append(payload[offset:offset + length])
            offset += length
        if offset != len(payload):
            raise AuthenticationError("trailing bytes in index entry")
        return parts[0], parts[1], parts[2]

    def join_payload(self, value_ct: bytes, row_ct: bytes, tag: bytes) -> bytes:
        """Inverse of :meth:`split_payload` (for the attack code)."""
        return b"".join(
            struct.pack(">I", len(part)) + part for part in (value_ct, row_ct, tag)
        )

    def _decode(self, payload: bytes, refs: EntryRefs, verify: bool) -> tuple[bytes, int | None]:
        value_ct, row_ct, tag = self.split_payload(payload)
        padded = self._mode.decrypt(value_ct)
        if len(padded) < self._a_size:
            raise AuthenticationError("value ciphertext too short")
        key = padded[: -self._a_size]           # strip the random suffix a
        row_plain = self._mode.decrypt(row_ct)
        if len(row_plain) != _ROW_WIDTH:
            raise AuthenticationError("table reference has wrong length")
        table_row = int.from_bytes(row_plain, "big")
        if verify and not self._mac.verify(
            self.mac_message(key, table_row, refs), tag
        ):
            raise AuthenticationError(
                f"index entry MAC failed at r_I={refs.row_id}"
            )
        return key, table_row

    def decode(self, payload: bytes, refs: EntryRefs) -> tuple[bytes, int | None]:
        return self._decode(payload, refs, verify=True)

    def decode_for_query(
        self, payload: bytes, refs: EntryRefs, at_leaf: bool
    ) -> tuple[bytes, int | None]:
        # Footnote 1: the published pseudo-code checks inner nodes during
        # the tree-walk but forgets the leaf level.  "Both bugs can be
        # easily fixed" — set faithful_leaf_bug=False for the fixed code.
        verify = not (at_leaf and self.faithful_leaf_bug)
        return self._decode(payload, refs, verify=verify)
