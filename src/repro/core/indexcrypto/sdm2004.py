"""The index encryption scheme of [3] (paper §2.3, eqs. 4–5).

"Given a row r_I in the index containing data V held in row r of the
indexed table, it is stored in encrypted form as

    E_k(V ∥ r_I)        for inner nodes,
    E_k((V, r) ∥ r_I)   for leaf nodes."

Only the key payload is encrypted; the structure (children, siblings)
stays plaintext.  Integrity rests entirely on the embedded r_I matching
the row the entry is read from — which Sect. 3.2 shows is defeated by
the same CBC cut-and-paste mechanics as the cell Append-Scheme, and the
deterministic E leaks index↔table correlations because the cell
plaintext ``V ∥ µ(t,r,c)`` and the index plaintext ``V ∥ r_I`` share the
prefix V (attack E4).
"""

from __future__ import annotations

from repro.engine.codec import EntryRefs, IndexEntryCodec
from repro.errors import AuthenticationError
from repro.modes.base import CipherMode

_ROW_WIDTH = 8


class SDM2004IndexCodec(IndexEntryCodec):
    """The [3] index entry format over a (deterministic) cipher mode."""

    name = "sdm2004"

    def __init__(self, mode: CipherMode) -> None:
        self._mode = mode

    @property
    def mode(self) -> CipherMode:
        return self._mode

    def plaintext_for(
        self, key: bytes, table_row: int | None, refs: EntryRefs
    ) -> bytes:
        """The exact plaintext handed to E — exposed because the attacks
        of Sect. 3.2 reason about its block decomposition."""
        row_ref = refs.row_id.to_bytes(_ROW_WIDTH, "big")
        if refs.is_leaf:
            if table_row is None:
                raise ValueError("leaf entries require a table row (eq. 5)")
            return key + table_row.to_bytes(_ROW_WIDTH, "big") + row_ref
        return key + row_ref

    def encode(self, key: bytes, table_row: int | None, refs: EntryRefs) -> bytes:
        return self._mode.encrypt(self.plaintext_for(key, table_row, refs))

    def decode(self, payload: bytes, refs: EntryRefs) -> tuple[bytes, int | None]:
        plaintext = self._mode.decrypt(payload)
        if len(plaintext) < _ROW_WIDTH:
            raise AuthenticationError("index entry too short")
        embedded_row = int.from_bytes(plaintext[-_ROW_WIDTH:], "big")
        if embedded_row != refs.row_id:
            # The only integrity [3] provides: the self-reference check.
            raise AuthenticationError(
                f"index row mismatch: entry claims r_I={embedded_row}, "
                f"stored at r_I={refs.row_id}"
            )
        body = plaintext[:-_ROW_WIDTH]
        if refs.is_leaf:
            if len(body) < _ROW_WIDTH:
                raise AuthenticationError("leaf entry too short")
            table_row = int.from_bytes(body[-_ROW_WIDTH:], "big")
            return body[:-_ROW_WIDTH], table_row
        return body, None
