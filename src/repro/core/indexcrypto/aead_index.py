"""The fixed index encryption scheme (paper eqs. 25–26).

For an index entry holding value V from cell (t, r, c), stored at row
r_I of index table t_I:

    Ref_T = r
    Ref_I = index-internal references (children / next sibling)
    Ref_S = (t_I, t, c, r_I)

"On encryption a unique nonce N is generated, and we store
(Ref_I, (N, C, T)) with (C, T) = AEAD-Enc_k(N, (V, Ref_T), (Ref_S, Ref_I))."

The plaintext is the pair (V, Ref_T) — the table reference is encrypted,
preventing linkage leakage — while the entry's own position Ref_S and
the structure around it Ref_I are associated data: authenticated, never
stored.  "Note that t_I, t, c are fixed for a given index" — they are
constructor parameters here — "and r_I is also known" (it arrives via
:class:`~repro.engine.codec.EntryRefs`).
"""

from __future__ import annotations

import struct

from repro.aead.base import AEAD, StoredEntry
from repro.engine.codec import EntryRefs, IndexEntryCodec
from repro.errors import AuthenticationError

_ROW_WIDTH = 8


class AeadIndexCodec(IndexEntryCodec):
    """AEAD-encrypted index entries with (Ref_S, Ref_I) as header."""

    name = "aead-index"

    def __init__(
        self,
        aead: AEAD,
        nonce_source,
        indexed_table: int,
        indexed_column: int,
    ) -> None:
        self._aead = aead
        self._nonces = nonce_source
        self._table = indexed_table
        self._column = indexed_column

    @property
    def aead(self) -> AEAD:
        return self._aead

    def associated_data(self, refs: EntryRefs) -> bytes:
        """(Ref_S, Ref_I) with Ref_S = (t_I, t, c, r_I) — eq. (25)."""
        ref_s = struct.pack(
            ">qqqq", refs.index_table, self._table, self._column, refs.row_id
        )
        return ref_s + refs.encode_internal()

    def encode(self, key: bytes, table_row: int | None, refs: EntryRefs) -> bytes:
        row = -1 if table_row is None else table_row
        plaintext = row.to_bytes(_ROW_WIDTH, "big", signed=True) + key
        nonce = self._nonces.next()
        ciphertext, tag = self._aead.encrypt(
            nonce, plaintext, self.associated_data(refs)
        )
        return StoredEntry(nonce, ciphertext, tag).to_bytes()

    def decode(self, payload: bytes, refs: EntryRefs) -> tuple[bytes, int | None]:
        try:
            entry = StoredEntry.from_bytes(payload)
        except ValueError:
            raise AuthenticationError("invalid") from None
        plaintext = self._aead.decrypt(
            entry.nonce, entry.ciphertext, entry.tag, self.associated_data(refs)
        )
        if len(plaintext) < _ROW_WIDTH:
            raise AuthenticationError("invalid")
        row = int.from_bytes(plaintext[:_ROW_WIDTH], "big", signed=True)
        return plaintext[_ROW_WIDTH:], None if row < 0 else row

    def storage_overhead(self) -> int:
        """Per-entry overhead octets: nonce + tag (Sect. 4 metric)."""
        return self._nonces.size + self._aead.tag_size
