"""Index entry encryption schemes: [3], [12], and the AEAD fix."""

from repro.core.indexcrypto.aead_index import AeadIndexCodec
from repro.core.indexcrypto.dbsec2005 import DBSec2005IndexCodec
from repro.core.indexcrypto.sdm2004 import SDM2004IndexCodec

__all__ = ["AeadIndexCodec", "DBSec2005IndexCodec", "SDM2004IndexCodec"]
