"""The address-checksum function µ of [3].

Sect. 2.2 of the paper: the cell encryption schemes "employ a function µ
to convert the cell address triple before inclusion in the plaintext",
and "it is suggested that the function µ is instantiated with a
cryptographic hash function to obtain collision resistance".  Sect. 3.1
follows [3, Sect. 6.2] concretely: ``µ(t,r,c) = h(t ∥ r ∥ c)`` with
SHA-1 "truncated to the first 128 bits".

The substitution attack of Sect. 3.1 searches *offline* for partial
collisions of µ across addresses, which is possible precisely because µ
is unkeyed.  :class:`KeyedMu` (HMAC) is the hardened variant used by the
ablation benchmarks — it does not fix the scheme (no integrity), but it
moves the collision search online.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Type

from repro.engine.table import CellAddress
from repro.primitives.hmac import HMAC
from repro.primitives.sha1 import SHA1
from repro.primitives.sha256 import SHA256


class Mu(ABC):
    """A function from cell addresses to fixed-length checksums."""

    #: Output length in bytes.
    size: int
    name: str

    @abstractmethod
    def __call__(self, address: CellAddress) -> bytes:
        """Compute µ(t, r, c)."""


class HashMu(Mu):
    """µ(t,r,c) = h(t ∥ r ∥ c) truncated — the paper's instantiation.

    Default: SHA-1 truncated to 16 bytes (128 bits), exactly the Sect. 3.1
    experiment's choice, sized to the AES block.
    """

    def __init__(self, hash_cls: Type = SHA1, size: int = 16) -> None:
        if not 1 <= size <= hash_cls.digest_size:
            raise ValueError(
                f"size must be in 1..{hash_cls.digest_size} for {hash_cls.name}"
            )
        self._hash_cls = hash_cls
        self.size = size
        self.name = f"{hash_cls.name}/{size * 8}"

    def __call__(self, address: CellAddress) -> bytes:
        return self._hash_cls(address.encode()).digest()[: self.size]


class KeyedMu(Mu):
    """µ_k(t,r,c) = HMAC_k(t ∥ r ∥ c) truncated (ablation variant).

    An adversary without k cannot evaluate µ, so the offline
    partial-collision search of Sect. 3.1 becomes impossible; the scheme
    remains unauthenticated (the CBC cut-and-paste forgeries survive).
    """

    def __init__(self, key: bytes, hash_cls: Type = SHA256, size: int = 16) -> None:
        if not 1 <= size <= hash_cls.digest_size:
            raise ValueError(
                f"size must be in 1..{hash_cls.digest_size} for {hash_cls.name}"
            )
        self._key = bytes(key)
        self._hash_cls = hash_cls
        self.size = size
        self.name = f"hmac-{hash_cls.name}/{size * 8}"

    def __call__(self, address: CellAddress) -> bytes:
        return HMAC(self._key, self._hash_cls, address.encode()).digest()[: self.size]


def default_mu() -> HashMu:
    """The paper's concrete µ: SHA-1 truncated to 128 bits."""
    return HashMu(SHA1, 16)
