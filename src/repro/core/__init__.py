"""The paper's schemes: cell encryption, index encryption, fixes, sessions."""

from repro.core.access import (
    AccessController,
    ColumnKeyedCellScheme,
    Grant,
    UserCredential,
)
from repro.core.address import HashMu, KeyedMu, Mu, default_mu
from repro.core.cellcrypto import (
    AeadCellScheme,
    AppendScheme,
    XorScheme,
    ascii_validator,
    no_validator,
)
from repro.core.encrypted_db import (
    EncryptedDatabase,
    EncryptionConfig,
    StorageView,
)
from repro.core.indexcrypto import (
    AeadIndexCodec,
    DBSec2005IndexCodec,
    SDM2004IndexCodec,
)
from repro.core.keys import KeyRing
from repro.core.rotation import RotationReport, rotate_master_key
from repro.core.session import ClientSideTraversal, SecureSession, TraversalTrace

__all__ = [
    "AccessController",
    "AeadCellScheme",
    "AeadIndexCodec",
    "AppendScheme",
    "ClientSideTraversal",
    "DBSec2005IndexCodec",
    "EncryptedDatabase",
    "ColumnKeyedCellScheme",
    "EncryptionConfig",
    "Grant",
    "HashMu",
    "KeyRing",
    "KeyedMu",
    "Mu",
    "RotationReport",
    "SDM2004IndexCodec",
    "SecureSession",
    "StorageView",
    "TraversalTrace",
    "UserCredential",
    "XorScheme",
    "ascii_validator",
    "default_mu",
    "no_validator",
    "rotate_master_key",
]
