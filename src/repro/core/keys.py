"""Key hierarchy and derivation.

The paper's threat model (Sect. 2.1) has the client own the keys and
hand them to the DBMS server for the duration of a secure session.  One
master key is expanded into independent purpose keys via an HMAC-SHA256
KDF, so that e.g. the index MAC can be keyed independently of the index
encryption — exactly the separation whose *absence* in [12] enables the
Sect. 3.3 interaction attack ("the same key k is used for encryption as
well as for the MAC algorithm.  This may lead to insecure interaction").
"""

from __future__ import annotations

from repro.errors import KeyLengthError
from repro.primitives.hmac import hmac_sha256


class KeyRing:
    """Derives and caches purpose-specific subkeys from a master key."""

    #: Well-known purposes used by the encrypted database.
    CELL = "cell-encryption"
    INDEX = "index-encryption"
    INDEX_MAC = "index-mac"
    MU = "address-checksum"

    def __init__(self, master_key: bytes) -> None:
        if len(master_key) < 16:
            raise KeyLengthError("master key must be at least 16 bytes")
        self._master = bytes(master_key)
        self._cache: dict[tuple[str, int], bytes] = {}

    def derive(self, purpose: str, length: int = 16) -> bytes:
        """KDF(master, purpose) truncated to ``length`` bytes (max 32)."""
        if not 1 <= length <= 32:
            raise KeyLengthError("derived keys are 1..32 bytes")
        if self.is_wiped:
            from repro.errors import SessionError

            raise SessionError("key ring has been wiped")
        cache_key = (purpose, length)
        if cache_key not in self._cache:
            okm = hmac_sha256(self._master, b"repro-kdf/" + purpose.encode("utf-8"))
            self._cache[cache_key] = okm[:length]
        return self._cache[cache_key]

    def cell_key(self, length: int = 16) -> bytes:
        return self.derive(self.CELL, length)

    def index_key(self, length: int = 16) -> bytes:
        return self.derive(self.INDEX, length)

    def index_mac_key(self, length: int = 16) -> bytes:
        return self.derive(self.INDEX_MAC, length)

    def mu_key(self, length: int = 16) -> bytes:
        return self.derive(self.MU, length)

    def wipe(self) -> None:
        """Drop all cached material (end-of-session hygiene, Sect. 2.1)."""
        self._cache.clear()
        self._master = b""

    @property
    def is_wiped(self) -> bool:
        return not self._master


class KeyChain:
    """An ordered lineage of master keys — one per **key epoch**.

    Rotation retires a master key by *extending* the chain rather than
    replacing it: epoch ``i`` is the i-th master key ever installed, and
    every epoch's purpose keys remain derivable while any shard, WAL, or
    checkpoint still authenticates under them.  A sharded keyspace
    records each shard's current epoch in its manifest; during an online
    rotation different shards legitimately sit at adjacent epochs, which
    is exactly what a single :class:`KeyRing` cannot express.

    Per-shard masters are derived per (shard id, epoch), so one shard's
    key material never decrypts a sibling's bytes — compromise of a
    quarantined shard stays contained.
    """

    #: KeyRing purpose prefix for per-shard master derivation.
    SHARD_PURPOSE = "shard-master"

    def __init__(self, masters: list[bytes] | tuple[bytes, ...]) -> None:
        if not masters:
            raise KeyLengthError("a key chain needs at least one master key")
        self._rings = [KeyRing(master) for master in masters]

    @classmethod
    def single(cls, master_key: bytes) -> "KeyChain":
        """A chain with only epoch 0 (the pre-rotation common case)."""
        return cls([master_key])

    @property
    def head_epoch(self) -> int:
        """The newest epoch — where rotations rotate *to*."""
        return len(self._rings) - 1

    def epochs(self) -> range:
        return range(len(self._rings))

    def ring(self, epoch: int) -> KeyRing:
        """The purpose-key ring of one epoch."""
        if not 0 <= epoch <= self.head_epoch:
            raise KeyLengthError(
                f"no epoch {epoch} in a chain of {len(self._rings)} master key(s)"
            )
        return self._rings[epoch]

    def shard_master(self, shard_id: str, epoch: int) -> bytes:
        """The 32-byte master key of one shard at one epoch."""
        return self.ring(epoch).derive(f"{self.SHARD_PURPOSE}/{shard_id}", 32)

    def extend(self, new_master_key: bytes) -> int:
        """Install a new master key; returns its (new head) epoch."""
        self._rings.append(KeyRing(new_master_key))
        return self.head_epoch
