"""Key hierarchy and derivation.

The paper's threat model (Sect. 2.1) has the client own the keys and
hand them to the DBMS server for the duration of a secure session.  One
master key is expanded into independent purpose keys via an HMAC-SHA256
KDF, so that e.g. the index MAC can be keyed independently of the index
encryption — exactly the separation whose *absence* in [12] enables the
Sect. 3.3 interaction attack ("the same key k is used for encryption as
well as for the MAC algorithm.  This may lead to insecure interaction").
"""

from __future__ import annotations

from repro.errors import KeyLengthError
from repro.primitives.hmac import hmac_sha256


class KeyRing:
    """Derives and caches purpose-specific subkeys from a master key."""

    #: Well-known purposes used by the encrypted database.
    CELL = "cell-encryption"
    INDEX = "index-encryption"
    INDEX_MAC = "index-mac"
    MU = "address-checksum"

    def __init__(self, master_key: bytes) -> None:
        if len(master_key) < 16:
            raise KeyLengthError("master key must be at least 16 bytes")
        self._master = bytes(master_key)
        self._cache: dict[tuple[str, int], bytes] = {}

    def derive(self, purpose: str, length: int = 16) -> bytes:
        """KDF(master, purpose) truncated to ``length`` bytes (max 32)."""
        if not 1 <= length <= 32:
            raise KeyLengthError("derived keys are 1..32 bytes")
        if self.is_wiped:
            from repro.errors import SessionError

            raise SessionError("key ring has been wiped")
        cache_key = (purpose, length)
        if cache_key not in self._cache:
            okm = hmac_sha256(self._master, b"repro-kdf/" + purpose.encode("utf-8"))
            self._cache[cache_key] = okm[:length]
        return self._cache[cache_key]

    def cell_key(self, length: int = 16) -> bytes:
        return self.derive(self.CELL, length)

    def index_key(self, length: int = 16) -> bytes:
        return self.derive(self.INDEX, length)

    def index_mac_key(self, length: int = 16) -> bytes:
        return self.derive(self.INDEX_MAC, length)

    def mu_key(self, length: int = 16) -> bytes:
        return self.derive(self.MU, length)

    def wipe(self) -> None:
        """Drop all cached material (end-of-session hygiene, Sect. 2.1)."""
        self._cache.clear()
        self._master = b""

    @property
    def is_wiped(self) -> bool:
        return not self._master
