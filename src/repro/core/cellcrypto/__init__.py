"""Cell encryption schemes: [3]'s XOR and Append schemes, and the fix."""

from repro.core.cellcrypto.aead_scheme import AeadCellScheme
from repro.core.cellcrypto.append_scheme import AppendScheme
from repro.core.cellcrypto.base import (
    CellScheme,
    Validator,
    ascii_validator,
    no_validator,
)
from repro.core.cellcrypto.xor_scheme import XorScheme

__all__ = [
    "AeadCellScheme",
    "AppendScheme",
    "CellScheme",
    "Validator",
    "XorScheme",
    "ascii_validator",
    "no_validator",
]
