"""The fixed cell encryption scheme (paper eqs. 23–24).

"For encrypting (under a key k ∈ K) a value V for a cell with address
Ref_T = (t, r, c), a unique nonce N is generated, and we store
(N, C, T) with (C, T) = AEAD-Enc_k(N, V, Ref_T)."  Decryption runs
AEAD-Dec_k(N, C, T, Ref_T) and raises on ``invalid``.

The cell address is the *associated data*: authenticated, never stored.
Confidentiality reduces to the AEAD's IND$ security (no pattern
matching, no correlation), and data+position authenticity to its
INT-CTXT security (no modification, substitution, or relocation) —
Sect. 4, Security Analysis.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.aead.base import AEAD, StoredEntry
from repro.core.cellcrypto.base import CellScheme
from repro.engine.table import CellAddress
from repro.errors import AuthenticationError


class AeadCellScheme(CellScheme):
    """Nonce-based AEAD cell encryption with the address as header."""

    name = "aead-cell"
    deterministic = False

    def __init__(self, aead: AEAD, nonce_source) -> None:
        self._aead = aead
        self._nonces = nonce_source

    @property
    def aead(self) -> AEAD:
        return self._aead

    def encode_cell(self, plaintext: bytes, address: CellAddress) -> bytes:
        nonce = self._nonces.next()
        ciphertext, tag = self._aead.encrypt(nonce, plaintext, address.encode())
        return StoredEntry(nonce, ciphertext, tag).to_bytes()

    def decode_cell(self, stored: bytes, address: CellAddress) -> bytes:
        try:
            entry = StoredEntry.from_bytes(stored)
        except ValueError:
            # Malformed framing is tampering too; same opaque failure.
            raise AuthenticationError("invalid") from None
        return self._aead.decrypt(
            entry.nonce, entry.ciphertext, entry.tag, address.encode()
        )

    def encode_cells(
        self, items: Sequence[tuple[bytes, CellAddress]]
    ) -> list[bytes]:
        # Nonces are drawn in list order — exactly what the sequential
        # loop would consume — then the whole batch goes through the
        # AEAD's amortized path.
        triples = [
            (self._nonces.next(), plaintext, address.encode())
            for plaintext, address in items
        ]
        sealed = self._aead.encrypt_batch(triples)
        return [
            StoredEntry(nonce, ciphertext, tag).to_bytes()
            for (nonce, _, _), (ciphertext, tag) in zip(triples, sealed)
        ]

    def decode_cells(
        self, items: Sequence[tuple[bytes, CellAddress]]
    ) -> list[bytes]:
        quads = []
        for stored, address in items:
            try:
                entry = StoredEntry.from_bytes(stored)
            except ValueError:
                raise AuthenticationError("invalid") from None
            quads.append((entry.nonce, entry.ciphertext, entry.tag, address.encode()))
        return self._aead.decrypt_batch(quads)

    def storage_overhead(self) -> int:
        """Octets of per-cell overhead: nonce + tag (Sect. 4 metric)."""
        nonce_size = self._nonces.size
        return nonce_size + self._aead.tag_size
