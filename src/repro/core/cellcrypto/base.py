"""Shared machinery for the cell encryption schemes.

All three cell schemes (XOR, Append, AEAD-fixed) implement the engine's
:class:`~repro.engine.database.CellCodec` protocol, so they drop into
:class:`~repro.engine.database.Database` unchanged — the paper's
structure-preservation property in code form.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.database import CellCodec
from repro.primitives.util import is_ascii

#: A redundancy predicate: does a decrypted value look valid?
#: The XOR-Scheme has no cryptographic integrity; [3] relies on
#: "enough redundancy in the allowed type of data" to notice corruption,
#: which is exactly what the Sect. 3.1 substitution attack defeats.
Validator = Callable[[bytes], bool]


def ascii_validator(data: bytes) -> bool:
    """The Sect. 3.1 redundancy model: every octet in 0..127."""
    return is_ascii(data)


def no_validator(data: bytes) -> bool:
    """Accept anything (no redundancy in the data type)."""
    return True


class CellScheme(CellCodec):
    """Marker base class for the paper's cell encryption schemes."""

    #: True when equal plaintexts at different addresses can produce
    #: related ciphertexts (the property the Sect. 3 attacks exploit).
    deterministic: bool
