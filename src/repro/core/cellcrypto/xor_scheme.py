"""The XOR-Scheme of [3] (paper eq. 1): ``C = E_k(V ⊕ µ(t,r,c))``.

The address checksum is XORed over (the first µ-size bytes of) the
value; per the paper's notation, if V is shorter than µ it is implicitly
zero-extended — meaning short values decrypt back zero-extended, one of
the scheme's many sharp edges.

There is no cryptographic integrity: decryption "verifies" only through
whatever redundancy the column's data type has (the optional
``validator``).  Sect. 3.1 breaks exactly this: for single-block ASCII
values, a partial second preimage of µ on the octet high bits lets an
adversary relocate a ciphertext to a different cell and still pass the
redundancy check.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.address import Mu, default_mu
from repro.core.cellcrypto.base import CellScheme, Validator, no_validator
from repro.engine.table import CellAddress
from repro.errors import DecryptionError
from repro.modes.base import CipherMode
from repro.primitives.util import xor_bytes


class XorScheme(CellScheme):
    """Cell encryption by address-XOR-then-encrypt (eq. 1)."""

    name = "xor-scheme"

    def __init__(
        self,
        mode: CipherMode,
        mu: Mu | None = None,
        validator: Validator = no_validator,
    ) -> None:
        self._mode = mode
        self._mu = mu if mu is not None else default_mu()
        self._validator = validator
        self.deterministic = mode.deterministic

    @property
    def mu(self) -> Mu:
        return self._mu

    @property
    def mode(self) -> CipherMode:
        return self._mode

    def encode_cell(self, plaintext: bytes, address: CellAddress) -> bytes:
        masked = xor_bytes(plaintext, self._mu(address))
        return self._mode.encrypt(masked)

    def decode_cell(self, stored: bytes, address: CellAddress) -> bytes:
        masked = self._mode.decrypt(stored)
        plaintext = xor_bytes(masked, self._mu(address))
        if not self._validator(plaintext):
            raise DecryptionError(
                "XOR-scheme redundancy check failed "
                f"at {address!r} (data looks invalid)"
            )
        return plaintext

    def encode_cells(
        self, items: Sequence[tuple[bytes, CellAddress]]
    ) -> list[bytes]:
        masked = [
            xor_bytes(plaintext, self._mu(address)) for plaintext, address in items
        ]
        return self._mode.encrypt_many(masked)

    def decode_cells(
        self, items: Sequence[tuple[bytes, CellAddress]]
    ) -> list[bytes]:
        masked = self._mode.decrypt_many([stored for stored, _ in items])
        out = []
        for (_, address), value in zip(items, masked):
            plaintext = xor_bytes(value, self._mu(address))
            if not self._validator(plaintext):
                raise DecryptionError(
                    "XOR-scheme redundancy check failed "
                    f"at {address!r} (data looks invalid)"
                )
            out.append(plaintext)
        return out
