"""The Append-Scheme of [3] (paper eq. 2): ``C = E_k(V ∥ µ(t,r,c))``.

Used "whenever there is not enough redundancy in the allowed type of
data for the specific column": the appended address checksum is the
redundancy, and decryption accepts iff the checksum blocks come back
intact at the expected position.

Sect. 3.1 defeats both of its goals when E is zero-IV CBC:

* equal plaintext prefixes leak block-for-block (pattern matching), and
* CBC's local error propagation means ciphertext blocks that precede the
  block *before* the checksum blocks can be modified freely — the
  checksum still verifies, an existential forgery (attack E2).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.address import Mu, default_mu
from repro.core.cellcrypto.base import CellScheme
from repro.engine.table import CellAddress
from repro.errors import AuthenticationError
from repro.modes.base import CipherMode
from repro.primitives.util import constant_time_equal


class AppendScheme(CellScheme):
    """Cell encryption by append-address-then-encrypt (eq. 2)."""

    name = "append-scheme"

    def __init__(self, mode: CipherMode, mu: Mu | None = None) -> None:
        self._mode = mode
        self._mu = mu if mu is not None else default_mu()
        self.deterministic = mode.deterministic

    @property
    def mu(self) -> Mu:
        return self._mu

    @property
    def mode(self) -> CipherMode:
        return self._mode

    def encode_cell(self, plaintext: bytes, address: CellAddress) -> bytes:
        return self._mode.encrypt(plaintext + self._mu(address))

    def decode_cell(self, stored: bytes, address: CellAddress) -> bytes:
        padded = self._mode.decrypt(stored)
        if len(padded) < self._mu.size:
            raise AuthenticationError("ciphertext too short for address checksum")
        value, checksum = padded[: -self._mu.size], padded[-self._mu.size:]
        if not constant_time_equal(checksum, self._mu(address)):
            raise AuthenticationError(
                f"address checksum mismatch at {address!r}"
            )
        return value

    def encode_cells(
        self, items: Sequence[tuple[bytes, CellAddress]]
    ) -> list[bytes]:
        return self._mode.encrypt_many(
            [plaintext + self._mu(address) for plaintext, address in items]
        )

    def decode_cells(
        self, items: Sequence[tuple[bytes, CellAddress]]
    ) -> list[bytes]:
        decrypted = self._mode.decrypt_many([stored for stored, _ in items])
        out = []
        for (_, address), padded in zip(items, decrypted):
            if len(padded) < self._mu.size:
                raise AuthenticationError(
                    "ciphertext too short for address checksum"
                )
            value, checksum = padded[: -self._mu.size], padded[-self._mu.size:]
            if not constant_time_equal(checksum, self._mu(address)):
                raise AuthenticationError(
                    f"address checksum mismatch at {address!r}"
                )
            out.append(value)
        return out
