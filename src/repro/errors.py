"""Exception hierarchy for the repro package.

The paper's decryption contract (eq. 22) returns ``invalid`` whenever the
key is wrong, the cell address is wrong, or the nonce, ciphertext, or tag
have been tampered with — without distinguishing the cases.  We model
``invalid`` as :class:`AuthenticationError`, so callers cannot accidentally
branch on *why* verification failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class CryptoError(ReproError):
    """Base class for errors raised by cryptographic components."""


class KeyLengthError(CryptoError):
    """A key of unsupported length was supplied to a primitive."""


class BlockSizeError(CryptoError):
    """Data whose length is not compatible with the cipher block size."""


class PaddingError(CryptoError):
    """Padding bytes were structurally invalid during unpadding.

    Note: in the fixed schemes padding errors are *never* surfaced directly;
    AEAD verification fails first, preventing padding-oracle side channels.
    """


class NonceError(CryptoError):
    """A nonce was missing, malformed, or illegally reused."""


class AuthenticationError(CryptoError):
    """Ciphertext, tag, nonce, or associated data failed verification.

    Corresponds to the opaque ``invalid`` result of eq. (22) in the paper.
    """


class DecryptionError(CryptoError):
    """Decryption could not produce a plaintext (non-authentication cause)."""


class EngineError(ReproError):
    """Base class for database-engine errors."""


class SchemaError(EngineError):
    """A table schema was violated (unknown column, type mismatch, ...)."""


class StorageFormatError(EngineError, ValueError):
    """A storage image is structurally malformed (truncated, mis-framed,
    bad magic, trailing garbage, ...).

    Raised by the storage loaders whenever the *framing* of an image —
    as opposed to its cryptographic content — cannot be parsed.  Also a
    :class:`ValueError` for backwards compatibility with callers that
    predate this class.
    """

    def __init__(self, message: str, offset: int | None = None) -> None:
        if offset is not None:
            message = f"{message} (at offset {offset})"
        super().__init__(message)
        self.offset = offset


class NoSuchTableError(EngineError):
    """A referenced table does not exist in the database."""


class NoSuchRowError(EngineError):
    """A referenced row does not exist in its table."""


class NoSuchIndexError(EngineError):
    """A referenced index does not exist."""


class IndexCorruptionError(EngineError):
    """An index invariant was violated (detected tampering or bugs)."""


class DiskError(ReproError):
    """Base class for write-target (virtual disk) failures."""


class TransientDiskError(DiskError):
    """A transient I/O failure: the operation did not happen, but an
    identical retry may succeed (flaky network storage, EINTR, a
    momentarily saturated device).  The only disk error a
    :class:`~repro.durability.retry.RetryPolicy` retries."""


class PowerCutError(DiskError):
    """The disk lost power mid-operation.  Everything not yet durable is
    gone and every subsequent operation on the same handle fails; only a
    fresh mount of the surviving bytes can continue."""


class RetryExhaustedError(TransientDiskError):
    """A retry policy gave up: every attempt failed transiently and the
    deadline passed.  Still a :class:`TransientDiskError` (the *cause*
    is transient; a later call may succeed), but typed so callers can
    distinguish "one flake" from "the backend stayed down", and carrying
    the evidence: how many attempts were made and the last underlying
    error.  Its message is the last error's message, so handlers that
    only log ``str(exc)`` see the root cause."""

    def __init__(self, attempts: int, last_error: BaseException) -> None:
        super().__init__(str(last_error))
        self.attempts = attempts
        self.last_error = last_error


class StaleImageError(DiskError):
    """The storage served a validly-MAC'd but *old* state: the trusted
    freshness anchor has acknowledged commits beyond what the recovered
    image and journal contain.  Either the store rolled back to an
    earlier snapshot (the active-server replay of arXiv:1605.01092) or
    acknowledged commits were destroyed; both must refuse to mount
    rather than silently resurrect overwritten data."""

    def __init__(
        self,
        message: str,
        *,
        anchor_seq: int | None = None,
        found_seq: int | None = None,
    ) -> None:
        if anchor_seq is not None or found_seq is not None:
            message = (
                f"{message} (anchor acknowledges seq {anchor_seq}, "
                f"storage serves seq {found_seq})"
            )
        super().__init__(message)
        self.anchor_seq = anchor_seq
        self.found_seq = found_seq


class SessionError(ReproError):
    """The trusted-session key-handover protocol was misused."""


class AttackFailedError(ReproError):
    """An attack primitive could not complete (used by the attack framework
    to distinguish 'scheme resisted' from 'attack code is broken')."""
