"""repro — a full reproduction of Kühn (SDM@VLDB 2006),
"Analysis of a Database and Index Encryption Scheme — Problems and Fixes".

The package implements, from scratch:

* the database substrate the schemes run on (:mod:`repro.engine`),
* the cryptographic primitives they are instantiated with
  (:mod:`repro.primitives`, :mod:`repro.modes`, :mod:`repro.mac`,
  :mod:`repro.aead`),
* the analysed schemes of [3] and [12] and the paper's AEAD fix
  (:mod:`repro.core`),
* every attack of Sect. 3 (:mod:`repro.attacks`), and
* the Sect. 4 overhead analysis (:mod:`repro.analysis`).

Quickstart::

    from repro import EncryptedDatabase, EncryptionConfig
    from repro.engine import TableSchema, Column, ColumnType, PointQuery

    db = EncryptedDatabase(b"0123456789abcdef" * 2,
                           EncryptionConfig.paper_fixed("eax"))
    db.create_table(TableSchema("t", [Column("v", ColumnType.TEXT)]))
    db.insert("t", ["secret"])
    db.create_index("t_v", "t", "v")
    PointQuery("t", "v", "secret").execute(db)
"""

from repro.core.encrypted_db import (
    EncryptedDatabase,
    EncryptionConfig,
    StorageView,
)
from repro.core.keys import KeyRing
from repro.core.session import ClientSideTraversal, SecureSession
from repro.errors import (
    AuthenticationError,
    CryptoError,
    DecryptionError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "AuthenticationError",
    "ClientSideTraversal",
    "CryptoError",
    "DecryptionError",
    "EncryptedDatabase",
    "EncryptionConfig",
    "KeyRing",
    "ReproError",
    "SecureSession",
    "StorageView",
    "__version__",
]
