"""One shard: its disk namespace, key lineage, and crash resolution.

A shard is a complete durable database in its own right — its own
:class:`~repro.durability.vdisk.VirtualDisk` (a prefixed view of the
keyspace's shared disk), its own MAC-committed WAL and authenticated
checkpoint, and its own purpose keys, all derived from the per-shard
per-epoch master ``KeyChain.shard_master(shard_id, epoch)``.

Mounting a shard runs the **rotation resolution** before the ordinary
WAL recovery of :class:`~repro.durability.manager.DurableDatabase`:

=========================================  =================================
WAL (under the shard's current epoch e)    resolution
=========================================  =================================
no rotation records                        normal mount at e (drop any
                                           stray staged checkpoint)
``rotate_begin`` without ``rotate_commit``  **roll back**: delete the staged
                                           checkpoint, reset the WAL, stay
                                           at e (``rotation.abort``)
``rotate_begin`` and ``rotate_commit``      **roll forward**: install the
                                           staged checkpoint, reset the WAL
                                           under e+1's MAC, move to e+1
nothing authenticates under e, but the     already installed: adopt e+1,
checkpoint authenticates under e+1         discard the stale old-epoch WAL
nothing authenticates under any epoch      degraded: mount anyway and let
                                           the resilient salvage path run —
                                           but *never write*: the durable
                                           bytes stay untouched so a mount
                                           with the right chain recovers
=========================================  =================================

Resolution is idempotent: a crash *during* resolution re-resolves to the
same outcome, because every step preserves the property that the WAL's
committed prefix still names the decision.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.anchor import TrustAnchor

from repro.core.encrypted_db import EncryptedDatabase, EncryptionConfig
from repro.core.keys import KeyChain, KeyRing
from repro.errors import DiskError
from repro.mac.base import MAC
from repro.observability.audit import AUDIT

from repro.durability.manager import (
    OP_ROTATE_BEGIN,
    OP_ROTATE_COMMIT,
    DurableDatabase,
)
from repro.durability.vdisk import VirtualDisk
from repro.durability.wal import (
    CHECKPOINT_BLOB,
    JOURNAL_BLOB,
    Journal,
    decode_checkpoint,
    journal_mac,
)

#: The staged new-epoch checkpoint a rotation writes before committing.
CHECKPOINT_NEXT = "checkpoint.next"


def shard_journal_mac(chain: KeyChain, shard_id: str, epoch: int) -> MAC:
    """The shard's WAL/checkpoint MAC at one epoch (cheap — no codecs)."""
    return journal_mac(KeyRing(chain.shard_master(shard_id, epoch)))


def shard_crypto(
    chain: KeyChain, shard_id: str, epoch: int, config: EncryptionConfig
) -> tuple[EncryptedDatabase, MAC]:
    """Full codec plumbing plus the WAL MAC for one (shard, epoch)."""
    enc = EncryptedDatabase(chain.shard_master(shard_id, epoch), config)
    return enc, journal_mac(enc.keys)


@dataclass
class ShardResolution:
    """What mounting one shard found and decided."""

    shard_id: str
    epoch: int
    rolled_back: bool = False
    rolled_forward: bool = False
    #: No epoch in the chain authenticates the shard's durable bytes —
    #: almost certainly the *wrong chain*, so the mount must not write.
    unauthenticated: bool = False
    issues: list[str] = field(default_factory=list)


class Shard:
    """A mounted shard: crypto plumbing + durable manager on one disk."""

    def __init__(
        self,
        shard_id: str,
        index: int,
        disk: VirtualDisk,
        config: EncryptionConfig,
        epoch: int,
        enc: EncryptedDatabase,
        manager: DurableDatabase,
        resolution: ShardResolution,
    ) -> None:
        self.shard_id = shard_id
        self.index = index
        self.disk = disk
        self.config = config
        self.epoch = epoch
        self.enc = enc
        self.manager = manager
        self.resolution = resolution

    @property
    def degraded(self) -> bool:
        return self.manager.recovery.degraded

    def checkpoint_digest(self) -> bytes:
        """SHA-256 of the shard's current checkpoint blob (empty if none)."""
        if not self.disk.exists(CHECKPOINT_BLOB):
            return b""
        return hashlib.sha256(self.disk.read(CHECKPOINT_BLOB)).digest()

    def adopt(
        self, enc: EncryptedDatabase, manager: DurableDatabase, epoch: int
    ) -> None:
        """Switch the live shard to freshly-installed epoch plumbing
        (the last step of a completed rotation)."""
        self.enc = enc
        self.manager = manager
        self.epoch = epoch


def _authenticating_epoch(
    disk: VirtualDisk,
    chain: KeyChain,
    shard_id: str,
    epoch_hint: int,
) -> int | None:
    """Which epoch's keys this shard's durable bytes authenticate under.

    The checkpoint MAC is the anchor; a shard without a checkpoint yet is
    judged by its WAL records.  Candidates are tried hint-first, then
    hint+1 (the mid-rotation neighbour), then every remaining epoch
    newest-first (the degraded, manifest-less probe).
    """
    candidates = [epoch_hint]
    if epoch_hint + 1 <= chain.head_epoch:
        candidates.append(epoch_hint + 1)
    for epoch in range(chain.head_epoch, -1, -1):
        if epoch not in candidates:
            candidates.append(epoch)

    has_checkpoint = disk.exists(CHECKPOINT_BLOB)
    for epoch in candidates:
        mac = shard_journal_mac(chain, shard_id, epoch)
        if has_checkpoint:
            if decode_checkpoint(disk.read(CHECKPOINT_BLOB), mac).ok:
                return epoch
        else:
            scan = Journal(disk, mac).scan()
            if scan.records:
                return epoch
    if not has_checkpoint:
        # Header-only (or missing) WAL and no checkpoint: nothing is
        # epoch-specific yet, so the hint is as good as any answer.
        return epoch_hint
    return None


def _delete_if_exists(disk: VirtualDisk, name: str) -> bool:
    if disk.exists(name):
        try:
            disk.delete(name)
            return True
        except DiskError:
            return False
    return False


def _resolve(
    disk: VirtualDisk, chain: KeyChain, shard_id: str, epoch_hint: int
) -> ShardResolution:
    """Run the rotation decision table before the ordinary WAL recovery."""
    resolution = ShardResolution(shard_id=shard_id, epoch=epoch_hint)
    if not disk.exists(CHECKPOINT_BLOB) and not disk.exists(JOURNAL_BLOB):
        return resolution  # brand-new shard

    epoch = _authenticating_epoch(disk, chain, shard_id, epoch_hint)
    if epoch is None:
        resolution.unauthenticated = True
        resolution.issues.append(
            f"{shard_id}: no key epoch in the chain authenticates the "
            f"checkpoint; mounting degraded at epoch {epoch_hint} without "
            f"touching the durable bytes"
        )
        return resolution
    resolution.epoch = epoch
    if epoch != epoch_hint:
        resolution.issues.append(
            f"{shard_id}: manifest said epoch {epoch_hint}, "
            f"bytes authenticate under epoch {epoch}"
        )
        if epoch == epoch_hint + 1:
            # The rotation installed its checkpoint but crashed before
            # the manifest (or the old WAL) caught up.
            resolution.rolled_forward = True

    mac = shard_journal_mac(chain, shard_id, epoch)
    journal = Journal(disk, mac)
    scan = journal.scan()
    begin = next((r for r in scan.records if r.op == OP_ROTATE_BEGIN), None)
    commit = next((r for r in scan.records if r.op == OP_ROTATE_COMMIT), None)

    if commit is not None:
        _roll_forward(disk, chain, shard_id, epoch, resolution)
    elif begin is not None:
        _roll_back(disk, journal, shard_id, epoch, scan.generation, resolution)
    else:
        if _delete_if_exists(disk, CHECKPOINT_NEXT):
            resolution.issues.append(
                f"{shard_id}: removed a stray staged checkpoint"
            )
        if resolution.rolled_forward and not scan.clean:
            # The stale old-epoch WAL (it authenticates under e-1, not
            # e) would read as torn; found it afresh under this epoch.
            ckpt = decode_checkpoint(
                disk.read(CHECKPOINT_BLOB), shard_journal_mac(chain, shard_id, epoch)
            )
            Journal(disk, shard_journal_mac(chain, shard_id, epoch)).reset(
                max(ckpt.generation, 1)
            )
    return resolution


def _roll_forward(
    disk: VirtualDisk,
    chain: KeyChain,
    shard_id: str,
    epoch: int,
    resolution: ShardResolution,
) -> None:
    """A committed rotation: finish installing the new epoch."""
    to_epoch = epoch + 1
    if to_epoch > chain.head_epoch:
        resolution.issues.append(
            f"{shard_id}: WAL commits a rotation to epoch {to_epoch} but the "
            f"chain ends at {chain.head_epoch}; cannot roll forward"
        )
        return
    new_mac = shard_journal_mac(chain, shard_id, to_epoch)
    if disk.exists(CHECKPOINT_NEXT):
        staged = decode_checkpoint(disk.read(CHECKPOINT_NEXT), new_mac)
        if not staged.ok:
            resolution.issues.append(
                f"{shard_id}: committed rotation's staged checkpoint is "
                f"{staged.status}; refusing to install it"
            )
            return
        disk.rename(CHECKPOINT_NEXT, CHECKPOINT_BLOB)
        Journal(disk, new_mac).reset(staged.generation)
    else:
        # Crash landed between the install rename and the WAL reset.
        installed = decode_checkpoint(disk.read(CHECKPOINT_BLOB), new_mac)
        if not installed.ok:
            resolution.issues.append(
                f"{shard_id}: committed rotation left neither a staged nor "
                f"an installed new-epoch checkpoint"
            )
            return
        Journal(disk, new_mac).reset(installed.generation)
    resolution.epoch = to_epoch
    resolution.rolled_forward = True


def _roll_back(
    disk: VirtualDisk,
    journal: Journal,
    shard_id: str,
    epoch: int,
    generation: int,
    resolution: ShardResolution,
) -> None:
    """An uncommitted rotation: erase every trace, stay at the old epoch."""
    _delete_if_exists(disk, CHECKPOINT_NEXT)
    journal.reset(generation)
    resolution.rolled_back = True
    AUDIT.emit(
        "rotation.abort",
        shard=shard_id,
        from_epoch=epoch,
        to_epoch=epoch + 1,
    )


def mount_shard(
    disk: VirtualDisk,
    chain: KeyChain,
    shard_id: str,
    index: int,
    config: EncryptionConfig,
    epoch_hint: int = 0,
    anchor: "TrustAnchor | None" = None,
) -> Shard:
    """Resolve any in-flight rotation, then mount the shard.

    With ``anchor`` set, the mount checks freshness under the scope
    ``"shard.<shard_id>"`` and raises
    :class:`~repro.errors.StaleImageError` on rollback."""
    resolution = _resolve(disk, chain, shard_id, epoch_hint)
    enc, mac = shard_crypto(chain, shard_id, resolution.epoch, config)
    manager = DurableDatabase.open(
        disk,
        mac,
        cell_codec=enc.cell_codec,
        index_codec_factory=enc._build_index_codec,
        # A wrong-chain mount must not fold its (empty) salvage over the
        # checkpoint the correct chain could still authenticate.
        fold=not resolution.unauthenticated,
        anchor=anchor,
        anchor_scope=f"shard.{shard_id}",
    )
    return Shard(
        shard_id=shard_id,
        index=index,
        disk=disk,
        config=config,
        epoch=resolution.epoch,
        enc=enc,
        manager=manager,
        resolution=resolution,
    )
