"""The rotation crash campaign: power-cut every rotation write boundary.

The rotation protocol of :mod:`repro.sharding.rotation` claims one
invariant — **epoch atomicity**: however the power dies mid-rotation, a
remount recovers every shard to exactly the old or the new key epoch,
never a mixture, with the cross-shard manifest verifying throughout.
This module makes the claim exhaustively checkable, mirroring the
mutation campaign of :mod:`repro.durability.crashcampaign`:

1. seed a keyspace and rotate it once crash-free on a pass-through
   :class:`~repro.durability.vdisk.CrashDisk` (every shard's blobs and
   the manifest share one disk, so one op counter sees every write
   boundary), snapshotting at each protocol phase the state a remount
   of the surviving bytes recovers to — per-shard epoch and logical
   dump, manifest verdict, and (for round-tripping schemes) point and
   range answers;
2. re-run seed + rotation once per (rotation boundary, crash mode)
   pair, catching the :class:`~repro.errors.PowerCutError`, remounting
   the survivor through the parallel keyspace recovery, and asserting
   the recovered state equals the snapshot just before or just after
   the cut.

Because both sides of the comparison go through the same remount
pipeline, the oracle is exact even for randomized codecs: re-encryption
under the new epoch is deterministic (seeded RNGs, counting nonces), so
matching snapshots match byte-for-byte in their dumps.

The reference run also checks the **online** half of the claim: at
every rotation phase boundary the live keyspace must answer the seeded
point and range queries identically to the pre-rotation baseline —
shards not currently rotating never notice a sibling's rotation.

An audit-neutrality side-check rides along: the full seed + rotate
leaves byte-identical disks with ``AUDIT`` enabled and disabled
(``rotation.*`` events are pure observation).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any

from repro.core.encrypted_db import EncryptionConfig
from repro.core.keys import KeyChain
from repro.engine.storage import dump_database
from repro.errors import PowerCutError
from repro.observability.audit import AUDIT
from repro.observability.flightrecorder import RECORDER
from repro.observability.timeseries import HUB
from repro.robustness.campaign import default_campaign_configs
from repro.robustness.reporting import format_detection_matrix, sweep_caption

from repro.durability.crashcampaign import (
    _CRASH_MASTER_KEY,
    _SCHEMA,
    _crash_points,
    _round_trips,
    _row_values,
    CRASH_MODES,
)
from repro.durability.vdisk import BYTE_OPS, CrashDisk, CrashPlan, MemoryDisk
from repro.sharding.keyspace import ShardedKeyspace

_ROTATED_MASTER_KEY = b"crashcampaign-rotated-key-765432"


def _seed_keyspace(keyspace: ShardedKeyspace, rows: int) -> None:
    """The pre-rotation workload: table, rows, both index kinds, fold."""
    keyspace.create_table(_SCHEMA)
    for i in range(rows):
        keyspace.insert("people", _row_values(i))
    keyspace.create_index("people_by_name", "people", "name", kind="table")
    keyspace.create_index("people_by_id", "people", "id", kind="btree")
    keyspace.checkpoint()


def _query_answers(keyspace: ShardedKeyspace, rows: int) -> dict[str, Any]:
    """Point answers per seeded key plus one fan-out range answer."""
    answers: dict[str, Any] = {
        "range": keyspace.select_range("people", "id", 0, rows + 10),
    }
    for i in range(rows):
        answers[f"id:{i}"] = keyspace.select_equals("people", "id", i)
    answers["name"] = keyspace.select_equals(
        "people", "name", _row_values(min(2, rows - 1))[1]
    )
    return answers


def _recovered_state(
    survivor: MemoryDisk,
    chain: KeyChain,
    config: EncryptionConfig,
    rows: int,
    include_queries: bool,
) -> tuple[dict[str, Any], ShardedKeyspace]:
    """Remount the surviving bytes (parallel per-shard recovery) and
    reduce the result to the comparable observable state."""
    keyspace = ShardedKeyspace.open(survivor, chain, config)
    state: dict[str, Any] = {
        "manifest": keyspace.recovery.manifest,
        "shards": tuple(
            (shard.epoch, shard.degraded, dump_database(shard.manager.database))
            for shard in keyspace.shards
        ),
    }
    if include_queries:
        state["queries"] = _query_answers(keyspace, rows)
    return state, keyspace


@dataclass
class _RotationBoundary:
    """Oracle entry: at ``ops`` boundaries a survivor remount recovers
    exactly ``state`` (captured just after protocol phase ``label``)."""

    label: str
    ops: int
    state: dict[str, Any]


@dataclass
class ConfigRotationResult:
    """Rotation sweep outcome for one scheme configuration."""

    config: str
    rotation_boundaries: int = 0
    trials: int = 0
    recovered_pre: int = 0
    recovered_post: int = 0
    rollbacks: int = 0
    rollforwards: int = 0
    violations: list[str] = field(default_factory=list)


@dataclass
class RotationCampaignResult:
    """The full rotation campaign: one sweep per configuration."""

    rows: int
    shard_count: int
    limit: int | None
    modes: tuple[str, ...]
    per_config: list[ConfigRotationResult] = field(default_factory=list)

    @property
    def violations(self) -> list[str]:
        return [v for result in self.per_config for v in result.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def format_matrix(self) -> str:
        return format_detection_matrix(
            [
                "boundaries", "trials", "pre", "post",
                "rollbacks", "rollforwards", "violations",
            ],
            [
                (
                    result.config,
                    [
                        result.rotation_boundaries,
                        result.trials,
                        result.recovered_pre,
                        result.recovered_post,
                        result.rollbacks,
                        result.rollforwards,
                        len(result.violations),
                    ],
                )
                for result in self.per_config
            ],
            caption=sweep_caption(
                "key-rotation crash campaign",
                f"{self.rows}-row workload, {self.shard_count} shards, "
                f"modes {'/'.join(self.modes)}",
                self.limit,
            ),
        )


def _reference_rotation(
    label: str,
    config: EncryptionConfig,
    rows: int,
    shard_count: int,
    result: ConfigRotationResult,
) -> tuple[list[_RotationBoundary], list[str]]:
    """Seed + rotate crash-free, snapshotting every phase boundary."""
    include_queries = _round_trips(config, _CRASH_MASTER_KEY)
    full_chain = KeyChain([_CRASH_MASTER_KEY, _ROTATED_MASTER_KEY])
    disk = CrashDisk(MemoryDisk())
    keyspace = ShardedKeyspace.open(
        disk, KeyChain.single(_CRASH_MASTER_KEY), config,
        shard_count=shard_count, workers=1,
    )
    _seed_keyspace(keyspace, rows)
    baseline = _query_answers(keyspace, rows) if include_queries else None
    snapshots: list[_RotationBoundary] = []

    def snapshot(phase_label: str, check_live: bool) -> None:
        state, _ = _recovered_state(
            disk.survivor(), full_chain, config, rows, include_queries
        )
        snapshots.append(_RotationBoundary(phase_label, disk.op_count, state))
        if include_queries and check_live:
            if _query_answers(keyspace, rows) != baseline:
                result.violations.append(
                    f"{label}: live keyspace answers changed at rotation "
                    f"phase {phase_label!r} — a sibling's rotation is visible"
                )

    snapshot("seeded", check_live=False)
    keyspace.rotate(
        _ROTATED_MASTER_KEY,
        on_phase=lambda sid, phase: snapshot(f"{sid}:{phase}", check_live=True),
    )
    return snapshots, list(disk.op_log)


def _sweep_rotation(
    label: str,
    config: EncryptionConfig,
    rows: int,
    shard_count: int,
    limit: int | None,
    modes: tuple[str, ...],
) -> ConfigRotationResult:
    result = ConfigRotationResult(config=label)
    include_queries = _round_trips(config, _CRASH_MASTER_KEY)
    full_chain = KeyChain([_CRASH_MASTER_KEY, _ROTATED_MASTER_KEY])
    snapshots, op_log = _reference_rotation(
        label, config, rows, shard_count, result
    )
    start = snapshots[0].ops  # ops before this index belong to seeding
    result.rotation_boundaries = len(op_log) - start
    cutoffs = [boundary.ops for boundary in snapshots]

    for offset in _crash_points(result.rotation_boundaries, limit):
        op_index = start + offset
        for mode in modes:
            if mode == "torn" and op_log[op_index] not in BYTE_OPS:
                continue  # tears identically to "cut" on payload-free ops
            disk = CrashDisk(MemoryDisk(), CrashPlan(op_index, mode))
            crashed = False
            try:
                keyspace = ShardedKeyspace.open(
                    disk, KeyChain.single(_CRASH_MASTER_KEY), config,
                    shard_count=shard_count, workers=1,
                )
                _seed_keyspace(keyspace, rows)
                keyspace.rotate(_ROTATED_MASTER_KEY)
            except PowerCutError:
                crashed = True
            if not crashed:
                result.violations.append(
                    f"{label}: planned crash at rotation boundary {op_index} "
                    f"({mode}) never fired"
                )
                continue
            result.trials += 1
            RECORDER.tick()
            RECORDER.record_injection(
                "crash", config=label, mode=mode, op_index=op_index
            )
            try:
                state, recovered = _recovered_state(
                    disk.survivor(), full_chain, config, rows, include_queries
                )
            except Exception as exc:
                result.violations.append(
                    f"{label}: recovery raised after crash at rotation "
                    f"boundary {op_index} ({mode}): {type(exc).__name__}: {exc}"
                )
                continue
            epochs = [shard.epoch for shard in recovered.shards]
            if any(epoch not in (0, 1) for epoch in epochs):
                result.violations.append(
                    f"{label}: crash at boundary {op_index} ({mode}) "
                    f"recovered shard epochs {epochs} outside the chain"
                )
            result.rollbacks += sum(
                1 for s in recovered.shards if s.resolution.rolled_back
            )
            result.rollforwards += sum(
                1 for s in recovered.shards if s.resolution.rolled_forward
            )
            # Boundary op_index interrupts the protocol phase *after* the
            # last snapshot whose op count is <= op_index.
            pre_index = bisect_right(cutoffs, op_index) - 1
            pre = snapshots[pre_index].state
            post = (
                snapshots[pre_index + 1].state
                if pre_index + 1 < len(snapshots)
                else pre
            )
            if state == post:
                result.recovered_post += 1
                RECORDER.record_detection(
                    "crash", config=label, mode=mode, op_index=op_index,
                    via="rotation-recovery",
                )
            elif state == pre:
                result.recovered_pre += 1
                RECORDER.record_detection(
                    "crash", config=label, mode=mode, op_index=op_index,
                    via="rotation-recovery",
                )
            else:
                result.violations.append(
                    f"{label}: crash at rotation boundary {op_index} ({mode}, "
                    f"{op_log[op_index]}, after phase "
                    f"{snapshots[pre_index].label!r}) recovered to a state "
                    f"matching neither side — shard epochs {epochs}, "
                    f"manifest {state['manifest']}"
                )
    return result


def _final_rotated_disk(
    config: EncryptionConfig, rows: int, shard_count: int
) -> dict[str, bytes]:
    disk = MemoryDisk()
    keyspace = ShardedKeyspace.open(
        disk, KeyChain.single(_CRASH_MASTER_KEY), config,
        shard_count=shard_count, workers=1,
    )
    _seed_keyspace(keyspace, rows)
    keyspace.rotate(_ROTATED_MASTER_KEY)
    return disk.durable_state()


def _audit_neutrality_check(
    label: str,
    config: EncryptionConfig,
    rows: int,
    shard_count: int,
    result: ConfigRotationResult,
) -> None:
    was_enabled = AUDIT.enabled
    try:
        AUDIT.disable()
        quiet = _final_rotated_disk(config, rows, shard_count)
        AUDIT.enable()
        audited = _final_rotated_disk(config, rows, shard_count)
    finally:
        AUDIT.enabled = was_enabled
    if quiet != audited:
        result.violations.append(
            f"{label}: enabling audit hooks changed the rotated bytes"
        )


def run_rotation_campaign(
    rows: int = 4,
    shard_count: int = 2,
    limit: int | None = None,
    configs: list[tuple[str, EncryptionConfig]] | None = None,
    modes: tuple[str, ...] = CRASH_MODES,
) -> RotationCampaignResult:
    """Sweep every (or ``limit`` evenly-spaced) rotation write boundary
    under every crash mode, for every configuration."""
    for mode in modes:
        if mode not in CRASH_MODES:
            raise ValueError(f"unknown crash mode {mode!r}")
    if shard_count < 1:
        raise ValueError("shard_count must be at least 1")
    configs = configs if configs is not None else default_campaign_configs()
    campaign = RotationCampaignResult(
        rows=rows, shard_count=shard_count, limit=limit, modes=tuple(modes)
    )
    for label, config in configs:
        result = _sweep_rotation(label, config, rows, shard_count, limit, modes)
        _audit_neutrality_check(label, config, rows, shard_count, result)
        campaign.per_config.append(result)
        if HUB.enabled:
            labels = {"config": label}
            HUB.tick()
            HUB.record("rotation.campaign.trials", result.trials, labels=labels)
            HUB.record(
                "rotation.campaign.recovered_pre", result.recovered_pre, labels=labels
            )
            HUB.record(
                "rotation.campaign.recovered_post",
                result.recovered_post,
                labels=labels,
            )
            HUB.record("rotation.campaign.rollbacks", result.rollbacks, labels=labels)
            HUB.record(
                "rotation.campaign.rollforwards", result.rollforwards, labels=labels
            )
            HUB.record(
                "rotation.campaign.violations",
                len(result.violations),
                labels=labels,
            )
    return campaign
