"""Sharded keyspace with crash-safe online key rotation.

The database is partitioned into shards, each a self-contained durable
encrypted database (own WAL, checkpoint, and per-shard per-epoch keys
derived from a :class:`~repro.core.keys.KeyChain`), bound together by a
MAC'd cross-shard manifest.  Key rotation is an online, journaled,
shard-by-shard state machine; recovery resolves any crash point to a
single consistent epoch per shard, and mounting recovers shards in
parallel.  See ``docs/robustness.md`` for the decision tables and
:mod:`repro.sharding.campaign` for the exhaustive crash campaign.
"""

from repro.sharding.keyspace import (
    DEFAULT_SHARD_COUNT,
    KeyspaceRecovery,
    KeyspaceRotationReport,
    ShardedKeyspace,
)
from repro.sharding.manifest import (
    Manifest,
    ManifestRecord,
    ShardEntry,
    read_manifest,
    write_manifest,
)
from repro.sharding.rotation import ShardRotation, ShardRotationOutcome
from repro.sharding.shard import Shard, ShardResolution, mount_shard

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "KeyspaceRecovery",
    "KeyspaceRotationReport",
    "Manifest",
    "ManifestRecord",
    "Shard",
    "ShardEntry",
    "ShardResolution",
    "ShardRotation",
    "ShardRotationOutcome",
    "ShardedKeyspace",
    "mount_shard",
    "read_manifest",
    "write_manifest",
]
