"""The MAC'd cross-shard manifest.

One blob on the keyspace's shared disk binds every shard together: for
each shard it records the **key epoch** the shard's bytes authenticate
under, the shard's checkpoint generation, and a digest of its checkpoint
blob.  The envelope discipline is the same as the authenticated
checkpoint of :mod:`repro.durability.wal` — framed fields followed by an
HMAC-SHA256 tag over exactly the framed bytes, decoded by a
never-raising reader that reports a status instead of leaking parse
errors.

The tag is keyed per epoch: the manifest declares which epoch signed it,
and the verifier derives that epoch's ``"manifest-mac"`` purpose key
from the :class:`~repro.core.keys.KeyChain`.  A manifest claiming an
epoch the chain does not contain is unverifiable by construction — the
same containment rule the shards themselves enforce.

The manifest is advisory, not authoritative: every shard's WAL and
checkpoint self-authenticate under the shard's own keys, so a stale or
even destroyed manifest degrades recovery (epoch probing instead of a
direct hint) without ever deciding what data is valid.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.core.keys import KeyChain, KeyRing
from repro.engine.storage import _Reader, _write_bytes, _write_int, _write_text
from repro.errors import DiskError, StorageFormatError
from repro.mac.base import MAC
from repro.mac.hmac_mac import HMACMAC

from repro.durability.vdisk import VirtualDisk

MANIFEST_MAGIC = b"REPROMAN1"

#: Blob names on the keyspace's shared disk (shard blobs are prefixed;
#: the manifest is the one unprefixed resident).
MANIFEST_BLOB = "manifest"
MANIFEST_TMP = "manifest.tmp"

#: KeyRing purpose for the manifest MAC — independent of every shard key.
MANIFEST_MAC_PURPOSE = "manifest-mac"

#: Decode statuses (mirrors the checkpoint record's vocabulary).
MANIFEST_OK = "ok"
MANIFEST_MISSING = "missing"
MANIFEST_UNAUTHENTICATED = "unauthenticated"
MANIFEST_MALFORMED = "malformed"


def manifest_mac(ring: KeyRing) -> MAC:
    """The manifest's commit MAC for one epoch's key ring."""
    return HMACMAC(ring.derive(MANIFEST_MAC_PURPOSE, 32))


@dataclass(frozen=True)
class ShardEntry:
    """One shard's line in the manifest."""

    shard_id: str
    key_epoch: int
    generation: int
    checkpoint_digest: bytes


@dataclass(frozen=True)
class Manifest:
    """The decoded cross-shard binding."""

    #: Epoch whose ``manifest-mac`` key signed this manifest (the newest
    #: epoch any shard currently uses).
    key_epoch: int
    #: Monotonic write counter, so two manifests can be ordered.
    seq: int
    entries: tuple[ShardEntry, ...]

    def entry(self, shard_id: str) -> ShardEntry | None:
        for entry in self.entries:
            if entry.shard_id == shard_id:
                return entry
        return None

    @property
    def shard_ids(self) -> list[str]:
        return [entry.shard_id for entry in self.entries]


@dataclass
class ManifestRecord:
    """A decoded manifest blob plus its verification status."""

    status: str
    manifest: Manifest | None = None
    detail: str = ""
    issues: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == MANIFEST_OK


def encode_manifest(manifest: Manifest, mac: MAC) -> bytes:
    """Frame the manifest and append the MAC tag over the framed bytes."""
    out = io.BytesIO()
    out.write(MANIFEST_MAGIC)
    _write_int(out, manifest.key_epoch)
    _write_int(out, manifest.seq)
    _write_int(out, len(manifest.entries))
    for entry in manifest.entries:
        _write_text(out, entry.shard_id)
        _write_int(out, entry.key_epoch)
        _write_int(out, entry.generation)
        _write_bytes(out, entry.checkpoint_digest)
    body = out.getvalue()
    _write_bytes(out, mac.tag(body))
    return out.getvalue()


def decode_manifest(blob: bytes, chain: KeyChain) -> ManifestRecord:
    """Decode and verify a manifest blob.  Never raises."""
    reader = _Reader(blob)
    record = ManifestRecord(status=MANIFEST_MALFORMED)
    try:
        reader.expect(MANIFEST_MAGIC)
        key_epoch = reader.read_int()
        seq = reader.read_int()
        count = reader.read_count("shard entry")
        entries = []
        for _ in range(count):
            entries.append(ShardEntry(
                shard_id=reader.read_text(),
                key_epoch=reader.read_int(),
                generation=reader.read_int(),
                checkpoint_digest=reader.read_bytes(),
            ))
    except StorageFormatError as exc:
        record.detail = str(exc)
        return record
    body_end = reader.offset
    try:
        tag = reader.read_bytes()
    except StorageFormatError as exc:
        record.status = MANIFEST_UNAUTHENTICATED
        record.detail = f"manifest tag unreadable: {exc}"
        return record
    if reader.remaining:
        record.status = MANIFEST_UNAUTHENTICATED
        record.detail = f"{reader.remaining} trailing byte(s) after manifest tag"
        return record
    if not 0 <= key_epoch <= chain.head_epoch:
        record.status = MANIFEST_UNAUTHENTICATED
        record.detail = (
            f"manifest claims signing epoch {key_epoch}, "
            f"chain holds epochs 0..{chain.head_epoch}"
        )
        return record
    if not manifest_mac(chain.ring(key_epoch)).verify(blob[:body_end], tag):
        record.status = MANIFEST_UNAUTHENTICATED
        record.detail = "manifest MAC failed verification"
        return record
    record.status = MANIFEST_OK
    record.manifest = Manifest(key_epoch, seq, tuple(entries))
    return record


def read_manifest(disk: VirtualDisk, chain: KeyChain) -> ManifestRecord:
    """Read and verify the manifest blob; missing reads as a status."""
    if not disk.exists(MANIFEST_BLOB):
        return ManifestRecord(status=MANIFEST_MISSING, detail="no manifest blob")
    try:
        blob = disk.read(MANIFEST_BLOB)
    except DiskError as exc:
        return ManifestRecord(status=MANIFEST_MISSING, detail=str(exc))
    return decode_manifest(blob, chain)


def write_manifest(disk: VirtualDisk, manifest: Manifest, chain: KeyChain) -> None:
    """Install a manifest atomically (write temp → sync → rename)."""
    blob = encode_manifest(manifest, manifest_mac(chain.ring(manifest.key_epoch)))
    disk.write(MANIFEST_TMP, blob)
    disk.sync(MANIFEST_TMP)
    disk.rename(MANIFEST_TMP, MANIFEST_BLOB)
