"""The sharded keyspace: N independent shards behind one facade.

Each shard is a self-contained durable encrypted database on a prefixed
namespace (``s0.``, ``s1.``, …) of one shared
:class:`~repro.durability.vdisk.VirtualDisk`, keyed by its own per-shard
per-epoch master (:meth:`~repro.core.keys.KeyChain.shard_master`).  The
MAC'd cross-shard manifest (:mod:`repro.sharding.manifest`) binds the
shards: which epoch each one is at, which checkpoint generation, and the
digest of its checkpoint blob.

Rows are routed by a deterministic hash of the table's first column
(the *shard key*); point queries on that column touch one shard, every
other query fans out and merges.  Mounting recovers all shards through
a worker pool — per-shard recovery is embarrassingly parallel because
no shard reads another's blobs — and a shard whose bytes cannot be
authenticated degrades to the resilient salvage path of
:mod:`repro.robustness.recovery` (via ``DurableDatabase.open``) instead
of failing the keyspace.

Rotation (:meth:`ShardedKeyspace.rotate`) runs the journaled state
machine of :mod:`repro.sharding.rotation` shard by shard, rewriting the
manifest after each shard's install, so a crash at any write boundary
leaves every shard at exactly one epoch and the manifest at most one
shard behind — the gap :func:`~repro.sharding.shard.mount_shard`
closes on the next open.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.resilience.anchor import TrustAnchor

from repro.core.encrypted_db import EncryptionConfig
from repro.core.keys import KeyChain
from repro.engine.schema import TableSchema
from repro.errors import DiskError, SchemaError
from repro.observability.audit import AUDIT
from repro.observability.timeseries import HUB, scheme_label

from repro.durability.vdisk import PrefixDisk, VirtualDisk
from repro.sharding.manifest import (
    MANIFEST_MISSING,
    MANIFEST_OK,
    Manifest,
    ShardEntry,
    read_manifest,
    write_manifest,
)
from repro.sharding.rotation import ShardRotation, ShardRotationOutcome
from repro.sharding.shard import Shard, mount_shard

#: Shards are named ``s<k>``; their blobs live under prefix ``s<k>.``.
DEFAULT_SHARD_COUNT = 2

#: Cap for the recovery worker pool (pure-Python crypto is GIL-bound,
#: so this bounds thread overhead, not parallel speedup).
_MAX_WORKERS = 8


def shard_id_for(index: int) -> str:
    return f"s{index}"


def shard_prefix_for(index: int) -> str:
    return f"s{index}."


def _shard_source(shard: "Shard"):
    """A telemetry pull-sampler for one mounted shard.

    Samples only logical state (degraded flag, epoch, per-table row
    counts) — everything here is deterministic under seeded workloads.
    The closure tracks the live shard through ``adopt`` swaps, so the
    same source stays valid across a rotation install.
    """

    def sample():
        yield ("shard.degraded", {}, float(shard.degraded))
        yield ("shard.epoch", {}, float(shard.epoch))
        yield from shard.manager.database.telemetry_sample()

    return sample


@dataclass
class KeyspaceRecovery:
    """What :meth:`ShardedKeyspace.open` found and decided."""

    manifest: str = MANIFEST_MISSING
    manifest_repaired: bool = False
    fresh: bool = False
    issues: list[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return self.manifest not in (MANIFEST_OK, MANIFEST_MISSING)


@dataclass(frozen=True)
class KeyspaceRotationReport:
    """What one keyspace rotation did."""

    to_epoch: int
    outcomes: tuple[ShardRotationOutcome, ...]
    skipped: tuple[str, ...]

    @property
    def cells_reencrypted(self) -> int:
        return sum(o.cells_reencrypted for o in self.outcomes)

    @property
    def index_entries_reencrypted(self) -> int:
        return sum(o.index_entries_reencrypted for o in self.outcomes)


class ShardedKeyspace:
    """N shards and their manifest on one shared disk."""

    def __init__(
        self,
        disk: VirtualDisk,
        chain: KeyChain,
        config: EncryptionConfig,
        shards: list[Shard],
        recovery: KeyspaceRecovery,
        anchor: "TrustAnchor | None" = None,
    ) -> None:
        self.disk = disk
        self.chain = chain
        self.config = config
        self.shards = shards
        self.recovery = recovery
        self._manifest_seq = 0
        self._anchor = anchor

    # -- mounting (doubles as parallel recovery) ------------------------------

    @classmethod
    def open(
        cls,
        disk: VirtualDisk,
        chain: KeyChain,
        config: EncryptionConfig | None = None,
        shard_count: int | None = None,
        workers: int | None = None,
        anchor: "TrustAnchor | None" = None,
    ) -> "ShardedKeyspace":
        """Mount (or create) a keyspace, recovering every shard.

        ``workers`` sizes the recovery pool; ``1`` forces sequential
        mounts (the crash campaign uses this for deterministic write
        boundaries on its fault-injecting disks).

        ``anchor`` enables rollback detection across the whole
        keyspace: the manifest is checked under the scope
        ``"manifest"`` and every shard under ``"shard.<id>"``; any
        scope behind the anchor raises
        :class:`~repro.errors.StaleImageError` instead of mounting.
        """
        config = config if config is not None else EncryptionConfig()
        recovery = KeyspaceRecovery()
        record = read_manifest(disk, chain)
        recovery.manifest = record.status
        if anchor is not None and record.ok:
            anchor.check(
                "manifest", record.manifest.seq, record.manifest.key_epoch
            )
            anchor.advance(
                "manifest", record.manifest.seq, record.manifest.key_epoch
            )

        if record.ok:
            count = len(record.manifest.entries)
            hints = {e.shard_id: e.key_epoch for e in record.manifest.entries}
            seq = record.manifest.seq
            if shard_count is not None and shard_count != count:
                recovery.issues.append(
                    f"manifest records {count} shard(s); ignoring requested "
                    f"shard_count={shard_count}"
                )
        else:
            observed = cls._observed_shard_count(disk)
            if record.status == MANIFEST_MISSING and observed == 0:
                recovery.fresh = True
                count = shard_count if shard_count is not None else DEFAULT_SHARD_COUNT
            else:
                # Manifest lost or unreadable over existing shards: mount
                # whatever namespaces exist and probe epochs per shard.
                count = observed if observed else (
                    shard_count if shard_count is not None else DEFAULT_SHARD_COUNT
                )
                recovery.issues.append(
                    f"manifest {record.status} ({record.detail}); mounting "
                    f"{count} shard(s) by epoch probing"
                )
            hints = {}
            seq = 0
        if anchor is not None and not record.ok:
            mark = anchor.get("manifest")
            if mark is not None:
                # A lost manifest must not restart the seq counter: the
                # repaired manifest resumes numbering from the trusted
                # watermark, so later mounts stay monotonic.
                seq = max(seq, mark.seq)
        if count < 1:
            raise SchemaError("a keyspace needs at least one shard")

        def mount(index: int) -> Shard:
            shard_id = shard_id_for(index)
            return mount_shard(
                PrefixDisk(disk, shard_prefix_for(index)),
                chain,
                shard_id,
                index,
                config,
                epoch_hint=hints.get(shard_id, 0),
                anchor=anchor,
            )

        pool_size = workers if workers is not None else min(count, _MAX_WORKERS)
        if pool_size <= 1 or count == 1:
            shards = [mount(index) for index in range(count)]
        else:
            with ThreadPoolExecutor(max_workers=pool_size) as pool:
                shards = list(pool.map(mount, range(count)))

        keyspace = cls(disk, chain, config, shards, recovery, anchor=anchor)
        keyspace._manifest_seq = seq
        for shard in shards:
            recovery.issues.extend(shard.resolution.issues)
            recovery.issues.extend(
                f"{shard.shard_id}: {issue}"
                for issue in shard.manager.recovery.issues
            )
        keyspace._reconcile_manifest(record.manifest if record.ok else None)
        if HUB.enabled:
            scheme = scheme_label(config)
            for shard in shards:
                labels = {"shard": shard.shard_id, "scheme": scheme}
                HUB.record("shard.degraded", float(shard.degraded), labels=labels)
                # Keyed per shard id: a campaign's re-mounts replace the
                # previous mount's sampler instead of accumulating one
                # dead source per trial.
                HUB.add_source(
                    _shard_source(shard), labels=labels, key=("shard", shard.shard_id)
                )
        return keyspace

    @staticmethod
    def _observed_shard_count(disk: VirtualDisk) -> int:
        """How many ``s<k>.`` namespaces hold blobs (contiguous from 0)."""
        indexes = set()
        for name in disk.names():
            if not name.startswith("s"):
                continue
            head, dot, _ = name.partition(".")
            if dot and head[1:].isdigit():
                indexes.add(int(head[1:]))
        count = 0
        while count in indexes:
            count += 1
        return count

    # -- manifest maintenance -------------------------------------------------

    def _current_manifest(self) -> Manifest:
        entries = tuple(
            ShardEntry(
                shard_id=shard.shard_id,
                key_epoch=shard.epoch,
                generation=shard.manager.generation,
                checkpoint_digest=shard.checkpoint_digest(),
            )
            for shard in self.shards
        )
        return Manifest(
            key_epoch=max(shard.epoch for shard in self.shards),
            seq=self._manifest_seq + 1,
            entries=entries,
        )

    def _write_manifest(self) -> None:
        manifest = self._current_manifest()
        write_manifest(self.disk, manifest, self.chain)
        self._manifest_seq = manifest.seq
        if self._anchor is not None:
            # After the durable write, never before: an honest crash
            # leaves the anchor at or behind the stored manifest.
            self._anchor.advance("manifest", manifest.seq, manifest.key_epoch)

    def _reconcile_manifest(self, manifest: Manifest | None) -> None:
        """After mounting, make the manifest match the shards on disk."""
        unauthenticated = [
            shard.shard_id
            for shard in self.shards
            if shard.resolution.unauthenticated
        ]
        if unauthenticated:
            # Almost certainly the wrong chain: re-signing the manifest
            # here would shadow the real one (epoch-0 keys are often
            # shared across chains) and mislead the next correct mount.
            self.recovery.issues.append(
                "manifest left untouched: "
                + ", ".join(unauthenticated)
                + " did not authenticate under this chain (a mount with "
                "the right chain can still recover them)"
            )
            return
        if manifest is None:
            self._write_manifest()
            self.recovery.manifest_repaired = not self.recovery.fresh
            return
        drift = []
        for shard in self.shards:
            entry = manifest.entry(shard.shard_id)
            if entry is None:
                drift.append(f"{shard.shard_id}: missing from manifest")
            elif entry.key_epoch != shard.epoch:
                drift.append(
                    f"{shard.shard_id}: manifest epoch {entry.key_epoch}, "
                    f"shard at {shard.epoch}"
                )
            elif (
                entry.generation != shard.manager.generation
                or entry.checkpoint_digest != shard.checkpoint_digest()
            ):
                drift.append(f"{shard.shard_id}: stale generation/digest")
        if drift:
            self.recovery.issues.extend(f"manifest drift — {d}" for d in drift)
            self._write_manifest()
            self.recovery.manifest_repaired = True

    # -- routing --------------------------------------------------------------

    def _schema(self, table_name: str) -> TableSchema:
        return self.shards[0].manager.database.table(table_name).schema

    def _route_key(self, table_name: str, value: Any) -> int:
        """Deterministic shard index for one shard-key value."""
        encoded = self._schema(table_name).columns[0].encode(value)
        digest = hashlib.sha256(b"repro-shard-route/" + encoded).digest()
        return int.from_bytes(digest[:8], "big") % len(self.shards)

    def shard_for(self, table_name: str, values: Sequence[Any]) -> Shard:
        return self.shards[self._route_key(table_name, values[0])]

    @property
    def degraded_shards(self) -> list[str]:
        return [shard.shard_id for shard in self.shards if shard.degraded]

    # -- DDL and DML ----------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        for shard in self.shards:
            shard.manager.create_table(schema)

    def create_index(
        self, name: str, table_name: str, column_name: str,
        kind: str = "table", order: int = 8,
    ) -> None:
        for shard in self.shards:
            shard.manager.create_index(name, table_name, column_name, kind, order)

    def insert(self, table_name: str, values: Sequence[Any]) -> tuple[int, int]:
        """Insert one row; returns ``(shard_index, row_id)``."""
        shard = self.shard_for(table_name, values)
        return shard.index, shard.manager.insert(table_name, values)

    def checkpoint(self) -> None:
        unauthenticated = [
            shard.shard_id
            for shard in self.shards
            if shard.resolution.unauthenticated
        ]
        if unauthenticated:
            raise DiskError(
                "refusing to checkpoint: "
                + ", ".join(unauthenticated)
                + " did not authenticate under this chain; a checkpoint "
                "would overwrite bytes the right chain could recover"
            )
        for shard in self.shards:
            shard.manager.checkpoint()
        self._write_manifest()

    # -- queries (fan-out + merge) --------------------------------------------

    def _merge(self, per_shard: list[tuple[int, list]]) -> list[tuple[int, int, list[Any]]]:
        merged = [
            (index, row_id, row)
            for index, rows in per_shard
            for row_id, row in rows
        ]
        merged.sort(key=lambda item: (item[0], item[1]))
        return merged

    def select_equals(
        self, table_name: str, column_name: str, value: Any
    ) -> list[tuple[int, int, list[Any]]]:
        """Point query; single-shard when on the shard key, else fan-out.
        Returns ``(shard_index, row_id, row)`` triples."""
        if self._schema(table_name).columns[0].name == column_name:
            targets = [self.shards[self._route_key(table_name, value)]]
        else:
            targets = self.shards
        return self._merge([
            (s.index, s.manager.database.select_equals(table_name, column_name, value))
            for s in targets
        ])

    def select_range(
        self, table_name: str, column_name: str, low: Any, high: Any
    ) -> list[tuple[int, int, list[Any]]]:
        """Range query: always a fan-out (hash routing scatters ranges)."""
        return self._merge([
            (s.index, s.manager.database.select_range(table_name, column_name, low, high))
            for s in self.shards
        ])

    def count(self, table_name: str) -> int:
        return sum(s.manager.database.count(table_name) for s in self.shards)

    # -- rotation -------------------------------------------------------------

    def rotate(
        self,
        new_master_key: bytes | None = None,
        shard_id: str | None = None,
        on_phase=None,
    ) -> KeyspaceRotationReport:
        """Rotate shards to a new key epoch, shard by shard, online.

        With ``new_master_key`` the chain is extended first; without it,
        shards still behind the chain's head epoch are brought up to it
        (resuming an interrupted rotation).  ``shard_id`` restricts the
        rotation to one shard.  ``on_phase(shard_id, phase)`` fires after
        every synced protocol step — sibling shards answer queries
        normally throughout.
        """
        if new_master_key is not None:
            to_epoch = self.chain.extend(new_master_key)
        else:
            to_epoch = self.chain.head_epoch
        targets = self.shards
        if shard_id is not None:
            targets = [s for s in self.shards if s.shard_id == shard_id]
            if not targets:
                raise SchemaError(f"no shard {shard_id!r} in this keyspace")

        outcomes = []
        skipped = []
        for shard in targets:
            if shard.epoch >= to_epoch:
                skipped.append(shard.shard_id)
                continue
            if shard.degraded:
                skipped.append(shard.shard_id)
                self.recovery.issues.append(
                    f"{shard.shard_id}: degraded shard left at epoch "
                    f"{shard.epoch}; not rotating"
                )
                continue
            rotation = ShardRotation(shard, self.chain, shard.epoch + 1)
            outcomes.append(rotation.run(on_phase))
            self._write_manifest()
            if HUB.enabled:
                HUB.event(
                    "rotation.manifest.writes",
                    1,
                    labels={"shard": shard.shard_id},
                )
                HUB.tick()
            if on_phase is not None:
                on_phase(shard.shard_id, "manifest")
        AUDIT.emit(
            "rotation.complete",
            to_epoch=to_epoch,
            rotated=len(outcomes),
            skipped=len(skipped),
        )
        return KeyspaceRotationReport(
            to_epoch=to_epoch,
            outcomes=tuple(outcomes),
            skipped=tuple(skipped),
        )
