"""The crash-safe, per-shard key-rotation state machine.

Unlike the in-place :func:`repro.core.rotation.rotate_master_key`
(atomic against exceptions, fatal under a power cut), this machine never
overwrites a byte the old epoch still needs.  Protocol, per shard:

1. **fold** — ``manager.checkpoint()``: the old-epoch WAL is now empty,
   so every later WAL record is a rotation marker;
2. **arm** — append ``rotate_begin`` (old-epoch MAC) and sync;
3. **stage** — re-encrypt a *clone* of the database under the new
   epoch's keys (progress markers journaled per table/index) and write
   it as a staged checkpoint blob ``checkpoint.next`` under the new
   epoch's MAC, then sync;
4. **commit** — append ``rotate_commit`` and sync.  *This is the commit
   point*: before it, recovery rolls back to the old epoch; at or after
   it, recovery rolls forward to the new one;
5. **install** — rename ``checkpoint.next`` over ``checkpoint``, reset
   the WAL under the new epoch's MAC, and swap the live shard onto the
   new plumbing.

Every arrow in that sequence is one synced write boundary, which is
exactly the granularity the rotation crash campaign
(:mod:`repro.sharding.campaign`) cuts power at.

The machine is a generator (:meth:`ShardRotation.steps`) so a caller —
the keyspace, a benchmark, a test — can interleave work between write
boundaries: that is what makes the rotation *online*, with sibling
shards serving queries mid-rotation.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterator

from repro.core.keys import KeyChain
from repro.engine.btree import BPlusTree
from repro.engine.database import Database
from repro.engine.indextable import IndexTable
from repro.engine.storage import (
    _Reader,
    _write_int,
    _write_text,
    dump_database,
    load_database,
)
from repro.errors import StorageFormatError
from repro.observability.audit import AUDIT
from repro.observability.timeseries import HUB

from repro.durability.manager import (
    OP_ROTATE_BEGIN,
    OP_ROTATE_COMMIT,
    OP_ROTATE_PROGRESS,
    DurableDatabase,
)
from repro.durability.wal import CHECKPOINT_BLOB, Journal, encode_checkpoint
from repro.sharding.shard import CHECKPOINT_NEXT, Shard, shard_crypto


@dataclass(frozen=True)
class ShardRotationOutcome:
    """What rotating one shard re-encrypted."""

    shard_id: str
    from_epoch: int
    to_epoch: int
    cells_reencrypted: int
    index_entries_reencrypted: int


def encode_epoch_transition(from_epoch: int, to_epoch: int) -> bytes:
    out = io.BytesIO()
    _write_int(out, from_epoch)
    _write_int(out, to_epoch)
    return out.getvalue()


def decode_epoch_transition(payload: bytes) -> tuple[int, int]:
    reader = _Reader(payload)
    from_epoch = reader.read_int()
    to_epoch = reader.read_int()
    if reader.remaining:
        raise StorageFormatError("trailing bytes in rotation record")
    return from_epoch, to_epoch


def _encode_progress(stage: str, count: int) -> bytes:
    out = io.BytesIO()
    _write_text(out, stage)
    _write_int(out, count)
    return out.getvalue()


def _reencrypt_cells(clone: Database, old_codec, new_codec) -> Iterator[tuple[str, int]]:
    """Rewrite every sensitive cell of ``clone`` (old ciphertexts loaded
    from the image) under the new codec; yields (table, cells) per table."""
    for table_name in clone.table_names:
        table = clone.table(table_name)
        sensitive = [
            position
            for position, column in enumerate(table.schema.columns)
            if column.sensitive
        ]
        # Collect the whole table, then fold through the batch codec APIs:
        # one decode_cells/encode_cells pair per table amortizes key
        # schedules and mode precomputation across every cell.  Scan
        # order × sensitive-column order matches the sequential loop, so
        # nonce/IV draws (and therefore bytes) are identical.
        targets: list[tuple[int, int]] = []
        stored: list[tuple[bytes, object]] = []
        for row_id, stored_cells in table.scan():
            for position in sensitive:
                address = table.address(row_id, position)
                targets.append((row_id, position))
                stored.append((stored_cells[position], address))
        plaintexts = old_codec.decode_cells(stored)
        fresh = new_codec.encode_cells(
            [
                (plaintext, address)
                for plaintext, (_, address) in zip(plaintexts, stored)
            ]
        )
        for (row_id, position), encoded in zip(targets, fresh):
            table.set_cell(row_id, position, encoded)
        yield table_name, len(targets)


def _reencrypt_index(clone: Database, index_name: str, old_enc) -> int:
    """Re-encode one index's payloads: decode under the *old* epoch's
    codec, encode under the structure's (already new-epoch) codec."""
    info = clone.index(index_name)
    table = clone.table(info.table)
    column_pos = table.schema.column_index(info.column)
    structure = info.structure
    old_codec = old_enc._build_index_codec(
        structure.index_table_id, table.table_id, column_pos
    )
    new_codec = structure.codec

    count = 0
    if isinstance(structure, IndexTable):
        for row in structure.raw_rows():
            if row.deleted:
                continue
            refs = row.refs(structure.index_table_id)
            key, table_row = old_codec.decode(row.payload, refs)
            row.payload = new_codec.encode(key, table_row, refs)
            count += 1
    elif isinstance(structure, BPlusTree):
        for node_id in sorted(structure._nodes):
            node = structure.node(node_id)
            for slot, entry in enumerate(node.entries):
                refs = structure.entry_refs(node, slot)
                key, table_row = old_codec.decode(entry.payload, refs)
                entry.payload = new_codec.encode(key, table_row, refs)
                count += 1
    else:  # pragma: no cover - no other structures exist
        raise TypeError(f"unknown index structure {type(structure)!r}")
    return count


class ShardRotation:
    """Drives one shard from its current epoch to ``to_epoch``."""

    def __init__(self, shard: Shard, chain: KeyChain, to_epoch: int) -> None:
        if to_epoch > chain.head_epoch:
            raise ValueError(
                f"cannot rotate to epoch {to_epoch}: chain ends at "
                f"{chain.head_epoch}"
            )
        if to_epoch != shard.epoch + 1:
            raise ValueError(
                f"shard {shard.shard_id} is at epoch {shard.epoch}; "
                f"rotation targets must be the next epoch, not {to_epoch}"
            )
        self.shard = shard
        self.chain = chain
        self.to_epoch = to_epoch
        self.cells = 0
        self.entries = 0

    def run(self, on_phase=None) -> ShardRotationOutcome:
        for phase in self.steps():
            if HUB.enabled:
                # One logical tick per synced write boundary: the hub's
                # clock advances exactly where the crash campaign cuts
                # power, so telemetry is deterministic under seeds.
                HUB.event(
                    "rotation.phase.steps",
                    1,
                    labels={
                        "shard": self.shard.shard_id,
                        "rotation_phase": phase.split()[0],
                    },
                )
                HUB.record(
                    "rotation.cells_reencrypted",
                    self.cells,
                    labels={"shard": self.shard.shard_id},
                )
                HUB.tick()
            if on_phase is not None:
                on_phase(self.shard.shard_id, phase)
        return ShardRotationOutcome(
            shard_id=self.shard.shard_id,
            from_epoch=self.to_epoch - 1,
            to_epoch=self.to_epoch,
            cells_reencrypted=self.cells,
            index_entries_reencrypted=self.entries,
        )

    def steps(self) -> Iterator[str]:
        shard = self.shard
        manager = shard.manager
        from_epoch = shard.epoch
        transition = encode_epoch_transition(from_epoch, self.to_epoch)

        # 1+2. fold, then journal the intent under the old epoch's MAC.
        manager.checkpoint()
        manager.commit_record(OP_ROTATE_BEGIN, transition)
        AUDIT.emit(
            "rotation.begin",
            shard=shard.shard_id,
            from_epoch=from_epoch,
            to_epoch=self.to_epoch,
        )
        yield "armed"

        # 3. stage: re-encrypt a clone under the new epoch's keys.
        new_enc, new_mac = shard_crypto(
            self.chain, shard.shard_id, self.to_epoch, shard.config
        )
        clone = load_database(
            dump_database(manager.database),
            cell_codec=new_enc.cell_codec,
            index_codec_factory=new_enc._build_index_codec,
        )
        for table_name, count in _reencrypt_cells(
            clone, shard.enc.cell_codec, new_enc.cell_codec
        ):
            self.cells += count
            manager.commit_record(
                OP_ROTATE_PROGRESS, _encode_progress(f"table:{table_name}", count)
            )
            yield f"reencrypted table {table_name}"
        for index_name in clone.index_names:
            count = _reencrypt_index(clone, index_name, shard.enc)
            self.entries += count
            manager.commit_record(
                OP_ROTATE_PROGRESS, _encode_progress(f"index:{index_name}", count)
            )
            yield f"reencrypted index {index_name}"

        generation = manager.generation + 1
        commit_seq = manager.last_seq + 1  # the commit record's seq
        staged = encode_checkpoint(
            generation, commit_seq, dump_database(clone), new_mac
        )
        shard.disk.write(CHECKPOINT_NEXT, staged)
        shard.disk.sync(CHECKPOINT_NEXT)
        yield "staged"

        # 4. the commit point.
        record = manager.commit_record(OP_ROTATE_COMMIT, transition)
        assert record.seq == commit_seq
        AUDIT.emit(
            "rotation.shard-commit",
            shard=shard.shard_id,
            from_epoch=from_epoch,
            to_epoch=self.to_epoch,
            cells=self.cells,
            entries=self.entries,
        )
        yield "committed"

        # 5. install and swap the live plumbing.
        shard.disk.rename(CHECKPOINT_NEXT, CHECKPOINT_BLOB)
        new_journal = Journal(shard.disk, new_mac)
        new_journal.reset(generation)
        new_manager = DurableDatabase(
            shard.disk,
            clone,
            new_journal,
            new_mac,
            generation=generation,
            seq=commit_seq,
            recovery=manager.recovery,
            anchor=manager.anchor,
            anchor_scope=manager.anchor_scope,
        )
        if manager.anchor is not None:
            # The install is durable (checkpoint renamed in, journal
            # reset); acknowledge the new generation so a subsequent
            # rollback to the pre-rotation epoch is detected.
            manager.anchor.advance(manager.anchor_scope, commit_seq, generation)
        shard.adopt(new_enc, new_manager, self.to_epoch)
        yield "installed"
