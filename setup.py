"""Editable-install shim for offline environments without the `wheel` package.

`pip install -e .` requires `wheel` for PEP 660 builds; this classic
setuptools entry point lets `python setup.py develop` (and pip's legacy
fallback) work from a plain checkout.
"""

from setuptools import setup

setup()
